type stats = { hits : int; misses : int; evictions : int }

(* POWERLIM_CACHE=0 disables caching process-wide (same spelling rules as
   POWERLIM_WARM and POWERLIM_JOBS); a malformed value is rejected with
   a once-per-process warning (see Env). *)
let env_default () = Env.flag "POWERLIM_CACHE" ~default:true

let enabled_flag = Atomic.make (env_default ())
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  name : string;
  capacity : int;
  mutex : Mutex.t;
  landed : Condition.t;  (** signalled when an in-flight build completes *)
  table : (string, 'a entry) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  mutable tick : int;  (** LRU clock, monotone under [mutex] *)
  mutable spill : (string -> 'a -> unit) option;
      (** next-tier write-back, called on eviction (outside [mutex]) *)
  mutable revive : (string -> 'a option) option;
      (** next-tier lookup, consulted on a miss before building *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

(* The registry erases the value type: per-cache closures for the
   process-wide totals / reset / clear entry points. *)
type registered = {
  r_name : string;
  r_stats : unit -> stats;
  r_reset : unit -> unit;
  r_clear : unit -> unit;
}

let registry : registered list ref = ref []
let registry_mutex = Mutex.create ()

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
  }

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.evictions 0

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Mutex.unlock t.mutex

let create ?(capacity = 64) ?spill ?revive ~name () =
  let t =
    {
      name;
      capacity = max 1 capacity;
      mutex = Mutex.create ();
      landed = Condition.create ();
      table = Hashtbl.create 64;
      inflight = Hashtbl.create 8;
      tick = 0;
      spill;
      revive;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
    }
  in
  Mutex.lock registry_mutex;
  registry :=
    {
      r_name = name;
      r_stats = (fun () -> stats t);
      r_reset = (fun () -> reset_stats t);
      r_clear = (fun () -> clear t);
    }
    :: !registry;
  Mutex.unlock registry_mutex;
  t

let set_tier t ?spill ?revive () =
  Mutex.lock t.mutex;
  t.spill <- spill;
  t.revive <- revive;
  Mutex.unlock t.mutex

(* Evict least-recently-used entries down to capacity.  O(n) scans, but
   n <= capacity and eviction is rare relative to the work cached.
   Under [mutex]; returns the evicted pairs so the caller can spill
   them to the next tier after releasing the lock. *)
let evict_locked t =
  let victims = ref [] in
  while Hashtbl.length t.table > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some ((k, e), e.last_use))
      t.table;
    match !victim with
    | Some ((k, e), _) ->
        Hashtbl.remove t.table k;
        Atomic.incr t.evictions;
        victims := (k, e.value) :: !victims
    | None -> ()
  done;
  !victims

(* Tier hooks are best-effort: a disk tier that cannot write (full or
   removed directory) must degrade to "no disk tier", never fail the
   solve that triggered the eviction. *)
let spill_victims t victims =
  match t.spill with
  | None -> ()
  | Some spill ->
      List.iter (fun (k, v) -> try spill k v with _ -> ()) victims

let find_or_build_where t key build =
  if not (enabled ()) then (build (), `Built)
  else begin
    Mutex.lock t.mutex;
    let rec get () =
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          Atomic.incr t.hits;
          let v = e.value in
          Mutex.unlock t.mutex;
          (v, `Hit)
      | None ->
          if Hashtbl.mem t.inflight key then begin
            (* Single-flight: another domain is building this key.  Wait
               for it to land and re-check (the entry may have been
               evicted again, in which case we become the builder). *)
            Condition.wait t.landed t.mutex;
            get ()
          end
          else begin
            Hashtbl.replace t.inflight key ();
            let revive = t.revive in
            Mutex.unlock t.mutex;
            (* As the builder, consult the next tier first: a revived
               value is a warm artifact (disk hit), not a rebuild. *)
            let v =
              try
                match revive with
                | Some revive -> (
                    (* a failing tier reads as a miss, mirroring
                       [spill_victims] *)
                    match (try revive key with _ -> None) with
                    | Some v -> (v, `Revived)
                    | None -> (build (), `Built))
                | None -> (build (), `Built)
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                Mutex.lock t.mutex;
                Hashtbl.remove t.inflight key;
                Condition.broadcast t.landed;
                Mutex.unlock t.mutex;
                Printexc.raise_with_backtrace e bt
            in
            Mutex.lock t.mutex;
            Hashtbl.remove t.inflight key;
            Atomic.incr t.misses;
            t.tick <- t.tick + 1;
            (match Hashtbl.find_opt t.table key with
            | Some e -> e.last_use <- t.tick  (* lost a race; keep theirs *)
            | None ->
                Hashtbl.replace t.table key
                  { value = fst v; last_use = t.tick });
            let victims = evict_locked t in
            Condition.broadcast t.landed;
            Mutex.unlock t.mutex;
            spill_victims t victims;
            v
          end
    in
    get ()
  end

let find_or_build t key build = fst (find_or_build_where t key build)

let totals () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left
    (fun (acc : stats) r ->
      let s = r.r_stats () in
      {
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
      })
    { hits = 0; misses = 0; evictions = 0 }
    rs

let reset_all_stats () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.r_reset ()) rs

let clear_all () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun r -> r.r_clear ()) rs

(* Stats provider: process totals plus a per-cache breakdown, in cache
   creation order. *)
let () =
  Obs.register_stats ~name:"cache" (fun () ->
      Mutex.lock registry_mutex;
      let rs = !registry in
      Mutex.unlock registry_mutex;
      let per_cache =
        List.rev_map
          (fun r ->
            let s = r.r_stats () in
            Obs.Assoc
              [
                ("name", Obs.String r.r_name);
                ("hits", Obs.Int s.hits);
                ("misses", Obs.Int s.misses);
                ("evictions", Obs.Int s.evictions);
              ])
          rs
      in
      let t = totals () in
      Obs.Assoc
        [
          ("enabled", Obs.Bool (enabled ()));
          ("hits", Obs.Int t.hits);
          ("misses", Obs.Int t.misses);
          ("evictions", Obs.Int t.evictions);
          ("caches", Obs.List per_cache);
        ])

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d hits, %d misses, %d evicted" s.hits s.misses
    s.evictions

let pp_totals ppf () = pp_stats ppf (totals ())
