(** Unified observability: span tracing and a process-wide stats registry.

    Two concerns, one module, because they share the export machinery:

    {b Spans.} Code wraps interesting regions in {!span}; each traced
    region records a begin/end event pair carrying the domain id, a
    category, and optional string arguments.  Events land in per-domain
    append-only buffers (no locks on the hot path; a mutex is taken only
    once per domain, at buffer creation), so recording from pool workers
    never serializes them.  The collected events export as Chrome
    trace-event JSON loadable in [chrome://tracing] or Perfetto, giving a
    flame chart of where wall time goes across domains.

    Tracing is {e disabled by default} ([POWERLIM_TRACE=0]); a disabled
    {!span} costs one atomic load and runs its thunk directly, and the
    hard invariant is that enabling tracing changes no computed output:
    spans observe, never steer.

    {b Stats.} Subsystems with counters (the LP solver, the artifact
    caches, the domain pool) register a provider with {!register_stats};
    {!stats_json} assembles every provider's current counters into one
    machine-readable JSON document (the [--stats-json] CLI output).

    Export should happen at quiescence (no domain still recording);
    concurrent appends during an export are not torn, but may be missed. *)

(** {1 Minimal JSON} *)

(** A tiny JSON value type so providers need no external dependency.
    Serialization escapes every non-printing and non-ASCII byte, so the
    output is always valid (ASCII-only) JSON; non-finite floats render as
    [null]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val json_to_buffer : Buffer.t -> json -> unit
val json_to_string : json -> string

(** {1 Enabling} *)

val enabled : unit -> bool
(** Initially from the environment: [POWERLIM_TRACE=1] (or [true], [on],
    [yes]) enables tracing; anything else — including unset — disables
    it. *)

val set_enabled : bool -> unit
(** Process-wide override of {!enabled} (the [--trace-out] CLI flag). *)

(** {1 Spans} *)

val span : ?args:(string * string) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [span ~cat name f] runs [f ()]; when tracing is enabled it brackets
    the call with begin/end events on the calling domain.  The end event
    is recorded even when [f] raises (the exception is re-raised with its
    backtrace), so traces stay balanced.  The enabled check happens once,
    at entry: a span started under tracing always closes. *)

val instant : ?args:(string * string) list -> cat:string -> string -> unit
(** A zero-duration marker event (Chrome phase ['i']). *)

(** {1 Collected events} *)

type event = {
  name : string;
  cat : string;
  ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant *)
  ts : float;  (** seconds since the process trace epoch *)
  tid : int;  (** recording domain id *)
  args : (string * string) list;
}

val events : unit -> event list
(** Snapshot of every recorded event, ordered by timestamp (ties keep
    per-domain recording order, so each tid's B/E events nest). *)

val event_count : unit -> int

val clear : unit -> unit
(** Drop all recorded events (tests; does not touch stats providers). *)

val to_chrome_json : unit -> string
(** The events as a Chrome trace-event JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with microsecond
    timestamps, [pid] 1 and [tid] the domain id. *)

val write_chrome_json : string -> unit
(** [write_chrome_json path] writes {!to_chrome_json} to [path]. *)

(** {1 Stats registry} *)

val register_stats : name:string -> (unit -> json) -> unit
(** Register (or replace) the provider for [name].  Providers are called
    lazily, at {!stats_json} time. *)

val stats_json : unit -> json
(** One [Assoc] with every registered provider's current value, keys
    sorted, so the document layout is deterministic. *)

val stats_to_string : unit -> string
val write_stats_json : string -> unit
