(* Tests for the trace serialization format and the DOT export. *)

let roundtrip g =
  let s = Dag.Trace_io.to_string g in
  let g' = Dag.Trace_io.of_string s in
  Alcotest.(check int) "ranks" g.Dag.Graph.nranks g'.Dag.Graph.nranks;
  Alcotest.(check int) "vertices" (Dag.Graph.n_vertices g) (Dag.Graph.n_vertices g');
  Alcotest.(check int) "tasks" (Dag.Graph.n_tasks g) (Dag.Graph.n_tasks g');
  Alcotest.(check int) "messages" (Dag.Graph.n_messages g) (Dag.Graph.n_messages g');
  Array.iteri
    (fun i (t : Dag.Graph.task) ->
      let t' = g'.Dag.Graph.tasks.(i) in
      Alcotest.(check int) "rank" t.rank t'.rank;
      Alcotest.(check int) "src" t.t_src t'.t_src;
      Alcotest.(check int) "dst" t.t_dst t'.t_dst;
      Alcotest.(check (float 0.0)) "work" t.profile.Machine.Profile.work
        t'.profile.Machine.Profile.work;
      Alcotest.(check string) "label" t.label t'.label;
      Alcotest.(check int) "iteration" t.iteration t'.iteration)
    g.Dag.Graph.tasks;
  Array.iteri
    (fun i (v : Dag.Graph.vertex) ->
      let v' = g'.Dag.Graph.vertices.(i) in
      Alcotest.(check bool) "kind" true (v.kind = v'.kind);
      Alcotest.(check bool) "pcontrol" v.pcontrol v'.pcontrol;
      Alcotest.(check (float 1e-15)) "delay" v.delay v'.delay)
    g.Dag.Graph.vertices;
  (* schedules of original and parsed graph agree *)
  let ts = Dag.Schedule.unconstrained g in
  let ts' = Dag.Schedule.unconstrained g' in
  Alcotest.(check (float 1e-12)) "same makespan" ts.Dag.Schedule.makespan
    ts'.Dag.Schedule.makespan

let test_roundtrip_apps () =
  List.iter
    (fun app ->
      roundtrip
        (Workloads.Apps.generate app
           { Workloads.Apps.default_params with nranks = 4; iterations = 2 }))
    Workloads.Apps.all_apps

let test_roundtrip_exchange () = roundtrip (Workloads.Apps.exchange ~rounds:2 ())

let test_roundtrip_file () =
  let g = Workloads.Apps.comd { Workloads.Apps.default_params with nranks = 3; iterations = 2 } in
  let path = Filename.temp_file "powerlim_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Dag.Trace_io.to_file path g;
      let g' = Dag.Trace_io.of_file path in
      Alcotest.(check int) "tasks" (Dag.Graph.n_tasks g) (Dag.Graph.n_tasks g'))

let test_label_encoding () =
  let b = Dag.Graph.Builder.create ~nranks:1 in
  Dag.Graph.Builder.compute b ~rank:0 ~label:"force calc 100%"
    (Machine.Profile.v 1.0);
  ignore (Dag.Graph.Builder.finalize b);
  let g = Dag.Graph.Builder.build b in
  let g' = Dag.Trace_io.of_string (Dag.Trace_io.to_string g) in
  Alcotest.(check string) "label with spaces and percent" "force calc 100%"
    g'.Dag.Graph.tasks.(0).Dag.Graph.label

let test_rejects_garbage () =
  Alcotest.check_raises "bad magic" (Dag.Trace_io.Parse_error (1, "bad magic \"nonsense\""))
    (fun () -> ignore (Dag.Trace_io.of_string "nonsense\n"));
  (match Dag.Trace_io.of_string "powerlim-trace 1\nranks 1\nbogus 1 2 3\n" with
  | exception Dag.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  (* structurally broken: task references a missing vertex *)
  let s =
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 false 0\n\
     vertex 1 finalize 0 false 0\ntask 0 0 0 7 1 0.05 0 0.2 0 %\n"
  in
  match Dag.Trace_io.of_string s with
  | exception Dag.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error for dangling vertex"

(* A one-task graph carrying [label], for label-focused roundtrips. *)
let graph_with_label label =
  let b = Dag.Graph.Builder.create ~nranks:1 in
  Dag.Graph.Builder.compute b ~rank:0 ~label (Machine.Profile.v 1.0);
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

(* Full char range: QCheck.string draws every byte 0x00-0xff, so this
   covers '%', whitespace (space, tab, CR, LF, FF, VT) that String.trim
   would strip, and non-ASCII bytes. *)
let prop_roundtrip_labels =
  QCheck.Test.make ~count:500 ~name:"label roundtrip over full char range"
    QCheck.string (fun label ->
      let g = graph_with_label label in
      let g' = Dag.Trace_io.of_string (Dag.Trace_io.to_string g) in
      g'.Dag.Graph.tasks.(0).Dag.Graph.label = label)

(* Labels whose raw bytes would be mangled by trimming/tokenizing if the
   encoder missed them; kept as explicit regressions alongside the
   property. *)
let test_label_hostile_cases () =
  List.iter
    (fun label ->
      let g = graph_with_label label in
      let g' = Dag.Trace_io.of_string (Dag.Trace_io.to_string g) in
      Alcotest.(check string) "hostile label survives" label
        g'.Dag.Graph.tasks.(0).Dag.Graph.label)
    [
      ""; "%"; "%%"; "a%4"; "%zz"; " leading"; "trailing "; "tab\there";
      "nl\nthere"; "cr\rthere"; "ff\012vt\011"; "100% d\xc3\xa9j\xc0 vu";
      "\000nul\000";
    ]

(* a trace whose only task carries [label] verbatim (no encoding) *)
let trace_with_raw_label label =
  Printf.sprintf
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 false 0\n\
     vertex 1 finalize 0 false 0\ntask 0 0 0 1 1 0.05 0 0.2 0 %s\n"
    label

let check_parse_error_on ~expected_line s =
  match Dag.Trace_io.of_string s with
  | exception Dag.Trace_io.Parse_error (line, _) ->
      Alcotest.(check int) "error reports the offending line" expected_line
        line
  | exception e ->
      Alcotest.failf "expected Parse_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error, parse succeeded"

let test_malformed_escape_is_parse_error () =
  (* '%zz' is not hex: must be Parse_error with the line, not a bare
     Failure escaping from int_of_string *)
  check_parse_error_on ~expected_line:5 (trace_with_raw_label "a%zzb")

let test_truncated_escape_is_parse_error () =
  (* '%4' at end of string must be rejected, not silently passed *)
  check_parse_error_on ~expected_line:5 (trace_with_raw_label "a%4")

let test_bad_literal_is_parse_error () =
  (* int/float/bool literal failures also surface as Parse_error *)
  check_parse_error_on ~expected_line:2 "powerlim-trace 1\nranks zz\n";
  check_parse_error_on ~expected_line:3
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 maybe 0\n"

(* Numeric-field failures must name the record kind, the field and the
   offending token — "bad integer for task tid: \"x\"" — not the bare
   "int_of_string" the stdlib converters produce. *)
let check_field_error ~expected_line ~field s =
  match Dag.Trace_io.of_string s with
  | exception Dag.Trace_io.Parse_error (line, msg) ->
      Alcotest.(check int) "error reports the offending line" expected_line
        line;
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec scan i =
          i + m <= n && (String.sub hay i m = needle || scan (i + 1))
        in
        scan 0
      in
      if not (contains msg field) then
        Alcotest.failf "error %S does not name %S" msg field;
      if contains msg "int_of_string" || contains msg "float_of_string" then
        Alcotest.failf "error %S leaks a stdlib converter name" msg
  | exception e ->
      Alcotest.failf "expected Parse_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error, parse succeeded"

let test_numeric_errors_name_the_field () =
  check_field_error ~expected_line:2 ~field:"ranks count"
    "powerlim-trace 1\nranks zz\n";
  check_field_error ~expected_line:3 ~field:"vertex vid"
    "powerlim-trace 1\nranks 1\nvertex x init 0 false 0\n";
  check_field_error ~expected_line:3 ~field:"vertex delay"
    "powerlim-trace 1\nranks 1\nvertex 0 init 0.1.2 false 0\n";
  check_field_error ~expected_line:3 ~field:"vertex pcontrol"
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 maybe 0\n";
  check_field_error ~expected_line:3 ~field:"vertex ranks"
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 false 0,q\n";
  let header =
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 false 0\n\
     vertex 1 finalize 0 false 0\n"
  in
  check_field_error ~expected_line:5 ~field:"task tid"
    (header ^ "task x 0 0 1 1 0.05 0 0.2 0 t\n");
  check_field_error ~expected_line:5 ~field:"task work"
    (header ^ "task 0 0 0 1 1e 0.05 0 0.2 0 t\n");
  check_field_error ~expected_line:5 ~field:"task serial"
    (header ^ "task 0 0 0 1 1 5% 0 0.2 0 t\n");
  check_field_error ~expected_line:5 ~field:"task iteration"
    (header ^ "task 0 0 0 1 1 0.05 0 0.2 iter t\n");
  check_field_error ~expected_line:5 ~field:"message bytes"
    (header ^ "message 0 0 1 0 0 many\n")

let test_empty_collective_name () =
  (* "collective:" (nothing after the colon) is a collective with an
     empty name and must parse, both built... *)
  let b = Dag.Graph.Builder.create ~nranks:2 in
  Dag.Graph.Builder.compute b ~rank:0 (Machine.Profile.v 1.0);
  Dag.Graph.Builder.compute b ~rank:1 (Machine.Profile.v 1.0);
  ignore (Dag.Graph.Builder.collective b ~name:"" ());
  ignore (Dag.Graph.Builder.finalize b);
  let g = Dag.Graph.Builder.build b in
  let g' = Dag.Trace_io.of_string (Dag.Trace_io.to_string g) in
  let has_empty_collective =
    Array.exists
      (fun (v : Dag.Graph.vertex) -> v.kind = Dag.Graph.Collective "")
      g'.Dag.Graph.vertices
  in
  Alcotest.(check bool) "empty-name collective roundtrips" true
    has_empty_collective;
  (* ...and parsed from a hand-written record *)
  let s =
    "powerlim-trace 1\nranks 1\nvertex 0 init 0 false 0\n\
     vertex 1 collective: 0 false 0\nvertex 2 finalize 0 false 0\n\
     task 0 0 0 1 1 0.05 0 0.2 0 %\ntask 1 0 1 2 1 0.05 0 0.2 0 %\n"
  in
  let g'' = Dag.Trace_io.of_string s in
  Alcotest.(check bool) "bare collective: kind accepted" true
    (g''.Dag.Graph.vertices.(1).Dag.Graph.kind = Dag.Graph.Collective "")

let prop_roundtrip_synthetic =
  QCheck.Test.make ~count:40 ~name:"trace roundtrip on synthetic graphs"
    QCheck.(pair (int_bound 500) (int_range 1 5))
    (fun (seed, nranks) ->
      let g = Workloads.Apps.synthetic ~seed ~nranks ~steps:4 in
      let g' = Dag.Trace_io.of_string (Dag.Trace_io.to_string g) in
      Dag.Graph.n_tasks g = Dag.Graph.n_tasks g'
      && Dag.Graph.n_messages g = Dag.Graph.n_messages g'
      &&
      let ts = Dag.Schedule.unconstrained g in
      let ts' = Dag.Schedule.unconstrained g' in
      Float.abs (ts.Dag.Schedule.makespan -. ts'.Dag.Schedule.makespan) < 1e-9)

(* substring search without extra dependencies *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_dot_output () =
  let g = Workloads.Apps.exchange () in
  let path = Filename.temp_file "powerlim_test" ".dot" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let ts = Dag.Schedule.unconstrained g in
      Dag.Dot.to_file ~times:ts path g;
      let ic = open_in path in
      let first = input_line ic in
      let all = ref [ first ] in
      (try
         while true do
           all := input_line ic :: !all
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check bool) "digraph header" true
        (String.length first >= 7 && String.sub first 0 7 = "digraph");
      let body = String.concat "\n" !all in
      Alcotest.(check bool) "has dashed message edge" true
        (contains body "style=dashed");
      Alcotest.(check bool) "annotated with times" true (contains body "0.000s"))

let suite =
  [
    ( "dag.trace_io",
      [
        Alcotest.test_case "roundtrip all apps" `Quick test_roundtrip_apps;
        Alcotest.test_case "roundtrip exchange" `Quick test_roundtrip_exchange;
        Alcotest.test_case "roundtrip file" `Quick test_roundtrip_file;
        Alcotest.test_case "label encoding" `Quick test_label_encoding;
        Alcotest.test_case "hostile labels" `Quick test_label_hostile_cases;
        QCheck_alcotest.to_alcotest prop_roundtrip_labels;
        Alcotest.test_case "malformed escape -> Parse_error" `Quick
          test_malformed_escape_is_parse_error;
        Alcotest.test_case "truncated escape -> Parse_error" `Quick
          test_truncated_escape_is_parse_error;
        Alcotest.test_case "bad literal -> Parse_error" `Quick
          test_bad_literal_is_parse_error;
        Alcotest.test_case "numeric errors name the field" `Quick
          test_numeric_errors_name_the_field;
        Alcotest.test_case "empty collective name" `Quick
          test_empty_collective_name;
        Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
        QCheck_alcotest.to_alcotest prop_roundtrip_synthetic;
        Alcotest.test_case "dot output" `Quick test_dot_output;
      ] );
  ]
