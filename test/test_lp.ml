(* Tests for the LP substrate: sparse matrices, LU factorization, the
   dense oracle simplex, the revised simplex, and branch-and-bound. *)

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Sparse                                                              *)
(* ------------------------------------------------------------------ *)

let test_coo_to_csc () =
  let c = Lp.Sparse.Coo.create () in
  Lp.Sparse.Coo.add c 1 0 2.0;
  Lp.Sparse.Coo.add c 0 0 1.0;
  Lp.Sparse.Coo.add c 0 0 3.0;
  (* duplicate: summed *)
  Lp.Sparse.Coo.add c 2 1 5.0;
  Lp.Sparse.Coo.add c 0 1 0.0;
  (* explicit zero: dropped *)
  let a = Lp.Sparse.Csc.of_coo c in
  Alcotest.(check int) "nrows" 3 (Lp.Sparse.Csc.nrows a);
  Alcotest.(check int) "ncols" 2 (Lp.Sparse.Csc.ncols a);
  Alcotest.(check int) "nnz" 3 (Lp.Sparse.Csc.nnz a);
  let d = Lp.Sparse.Csc.to_dense a in
  check_float "a00" 4.0 d.(0).(0);
  check_float "a10" 2.0 d.(1).(0);
  check_float "a21" 5.0 d.(2).(1)

let test_csc_mult () =
  let c = Lp.Sparse.Coo.create () in
  Lp.Sparse.Coo.add c 0 0 1.0;
  Lp.Sparse.Coo.add c 0 1 2.0;
  Lp.Sparse.Coo.add c 1 1 3.0;
  let a = Lp.Sparse.Csc.of_coo c in
  let y = Array.make 2 0.0 in
  Lp.Sparse.Csc.mult a [| 10.0; 100.0 |] y;
  check_float "y0" 210.0 y.(0);
  check_float "y1" 300.0 y.(1);
  let z = Lp.Sparse.Csc.mult_t a [| 1.0; 1.0 |] in
  check_float "z0" 1.0 z.(0);
  check_float "z1" 5.0 z.(1)

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)
(* ------------------------------------------------------------------ *)

let random_sparse_matrix rng m density =
  let a = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    (* guarantee structural nonsingularity with a strong diagonal *)
    a.(i).(i) <- 2.0 +. QCheck.Gen.float_bound_inclusive 3.0 rng;
    for j = 0 to m - 1 do
      if i <> j && QCheck.Gen.float_bound_inclusive 1.0 rng < density then
        a.(i).(j) <- QCheck.Gen.float_range (-2.0) 2.0 rng
    done
  done;
  a

let lu_roundtrip m density seed =
  let rng = Random.State.make [| seed |] in
  let a = random_sparse_matrix rng m density in
  let col_iter k f =
    for i = 0 to m - 1 do
      if a.(i).(k) <> 0.0 then f i a.(i).(k)
    done
  in
  let lu = Lp.Lu.factor ~m col_iter in
  Alcotest.(check (list (pair int int))) "no replaced columns" [] lu.Lp.Lu.replaced;
  (* check B x = b for a few right-hand sides *)
  let x = Array.make m 0.0 and scratch = Array.make m 0.0 in
  for trial = 0 to 2 do
    let b = Array.init m (fun i -> Float.of_int ((i + trial) mod 5) -. 2.0) in
    Lp.Lu.solve lu ~b ~x ~scratch;
    (* residual: B x - b where x is indexed by column position *)
    for i = 0 to m - 1 do
      let s = ref 0.0 in
      for k = 0 to m - 1 do
        s := !s +. (a.(i).(k) *. x.(k))
      done;
      if Float.abs (!s -. b.(i)) > 1e-8 then
        Alcotest.failf "solve residual %g at row %d" (!s -. b.(i)) i
    done;
    (* transpose solve *)
    let y = Array.make m 0.0 in
    let c = Array.init m (fun i -> Float.of_int (i mod 3) -. 1.0) in
    Lp.Lu.solve_t lu ~c ~y ~scratch;
    for k = 0 to m - 1 do
      let s = ref 0.0 in
      for i = 0 to m - 1 do
        s := !s +. (a.(i).(k) *. y.(i))
      done;
      if Float.abs (!s -. c.(k)) > 1e-8 then
        Alcotest.failf "solve_t residual %g at col %d" (!s -. c.(k)) k
    done
  done

let test_lu_small () = lu_roundtrip 5 0.5 42
let test_lu_medium () = lu_roundtrip 60 0.1 7
let test_lu_dense () = lu_roundtrip 25 0.9 3

(* --- Forrest–Tomlin updates --------------------------------------- *)

(* Random column replacements against a live matrix copy: after each
   certified update the FT kernels must agree with a full
   refactorization of the explicitly modified matrix, and with zero
   updates they must replay the base kernels bit for bit. *)
let ft_update_roundtrip m density nupd seed =
  let rng = Random.State.make [| seed |] in
  let a = random_sparse_matrix rng m density in
  let col_iter k f =
    for i = 0 to m - 1 do
      if a.(i).(k) <> 0.0 then f i a.(i).(k)
    done
  in
  let lu = Lp.Lu.factor ~m col_iter in
  let wsp = Lp.Lu.Ft.make_wsp m in
  let ft = ref (Lp.Lu.Ft.of_factor wsp lu) in
  let x = Array.make m 0.0
  and x' = Array.make m 0.0
  and scratch = Array.make m 0.0 in
  (* zero updates: bitwise identity with the base kernels *)
  let b0 = Array.init m (fun i -> Float.of_int ((i * 7 mod 11) - 5)) in
  Lp.Lu.solve lu ~b:b0 ~x ~scratch;
  Lp.Lu.Ft.ftran_d !ft ~keep_spike:false ~b:b0 ~x:x' ~scratch;
  Alcotest.(check (array (float 0.0))) "ftran_d = solve at 0 updates" x x';
  let y = Array.make m 0.0 and y' = Array.make m 0.0 in
  Lp.Lu.solve_t lu ~c:b0 ~y ~scratch;
  Lp.Lu.Ft.btran_d !ft ~c:b0 ~y:y' ~scratch;
  Alcotest.(check (array (float 0.0))) "btran_d = solve_t at 0 updates" y y';
  (* now a pivot sequence of random column replacements *)
  let bdense = Array.make m 0.0 in
  let done_upd = ref 0 and tries = ref 0 in
  while !done_upd < nupd && !tries < 50 * nupd do
    incr tries;
    let r = QCheck.Gen.int_bound (m - 1) rng in
    let col =
      Array.init m (fun _ ->
          if QCheck.Gen.float_bound_inclusive 1.0 rng < density then
            QCheck.Gen.float_range (-2.0) 2.0 rng
          else 0.0)
    in
    col.(r) <- col.(r) +. 2.0;
    Array.iteri (fun i v -> bdense.(i) <- v) col;
    Lp.Lu.Ft.ftran_d !ft ~keep_spike:true ~b:bdense ~x ~scratch;
    if Float.abs x.(r) > 0.1 then
      if Lp.Lu.Ft.update !ft ~pos:r ~wr:x.(r) then begin
        incr done_upd;
        for i = 0 to m - 1 do
          a.(i).(r) <- col.(i)
        done;
        (* reference: full refactorization of the updated matrix *)
        let lu2 = Lp.Lu.factor ~m col_iter in
        let b = Array.init m (fun i -> Float.of_int ((i + !done_upd) mod 5) -. 2.0) in
        Lp.Lu.solve lu2 ~b ~x:x' ~scratch;
        Lp.Lu.Ft.ftran_d !ft ~keep_spike:false ~b ~x ~scratch;
        for k = 0 to m - 1 do
          if Float.abs (x.(k) -. x'.(k)) > 1e-7 then
            Alcotest.failf "ftran after %d updates: %.12g vs %.12g at %d"
              !done_upd x.(k) x'.(k) k
        done;
        (* sparse FTRAN agrees with dense on its support *)
        Array.fill x 0 m 0.0;
        let bidx = [| QCheck.Gen.int_bound (m - 1) rng |] in
        Array.fill bdense 0 m 0.0;
        bdense.(bidx.(0)) <- 1.5;
        let xind = Array.make m 0 in
        let n =
          Lp.Lu.Ft.ftran_sp !ft ~keep_spike:false ~nb:1 ~bidx ~b:bdense ~x
            ~xind
        in
        Lp.Lu.Ft.ftran_d !ft ~keep_spike:false ~b:bdense ~x:x' ~scratch;
        (if n >= 0 then
           for e = 0 to n - 1 do
             let k = xind.(e) in
             if x.(k) <> x'.(k) then
               Alcotest.failf "ftran_sp bit-diff at %d: %h vs %h" k x.(k)
                 x'.(k)
           done
         else
           for k = 0 to m - 1 do
             if x.(k) <> x'.(k) then
               Alcotest.failf "ftran_sp dense-fallback diff at %d" k
           done);
        Array.fill x 0 m 0.0;
        (if n >= 0 then for e = 0 to n - 1 do x.(xind.(e)) <- 0.0 done);
        Array.fill bdense 0 m 0.0;
        (* BTRAN agrees with the refactorized transpose solve *)
        let c = Array.init m (fun i -> Float.of_int (i mod 3) -. 1.0) in
        Lp.Lu.solve_t lu2 ~c ~y:y' ~scratch;
        Lp.Lu.Ft.btran_d !ft ~c ~y ~scratch;
        for i = 0 to m - 1 do
          if Float.abs (y.(i) -. y'.(i)) > 1e-7 then
            Alcotest.failf "btran after %d updates: %.12g vs %.12g at %d"
              !done_upd y.(i) y'.(i) i
        done;
        (* sparse BTRAN bitwise vs dense FT BTRAN *)
        let cidx = [| QCheck.Gen.int_bound (m - 1) rng |] in
        let csp = Array.make m 0.0 in
        csp.(cidx.(0)) <- -2.5;
        let yind = Array.make m 0 in
        Array.fill y 0 m 0.0;
        let n = Lp.Lu.Ft.btran_sp !ft ~nc:1 ~cidx ~c:csp ~y ~yind in
        Lp.Lu.Ft.btran_d !ft ~c:csp ~y:y' ~scratch;
        if n >= 0 then
          for e = 0 to n - 1 do
            let i = yind.(e) in
            if y.(i) <> y'.(i) then
              Alcotest.failf "btran_sp bit-diff at %d: %h vs %h" i y.(i)
                y'.(i)
          done
      end
      else begin
        (* refused update: refactorize and carry on, like the solver *)
        for i = 0 to m - 1 do
          a.(i).(r) <- col.(i)
        done;
        ft := Lp.Lu.Ft.of_factor wsp (Lp.Lu.factor ~m col_iter);
        incr done_upd
      end
  done;
  if !done_upd < nupd then
    Alcotest.failf "only %d/%d updates applied" !done_upd nupd

let test_ft_small () = ft_update_roundtrip 6 0.5 8 11
let test_ft_medium () = ft_update_roundtrip 40 0.15 25 23
let test_ft_dense () = ft_update_roundtrip 18 0.8 12 5
let test_ft_many () = ft_update_roundtrip 30 0.2 60 91

let test_lu_identity () =
  let m = 4 in
  let lu = Lp.Lu.factor ~m (fun k f -> f k 1.0) in
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let x = Array.make m 0.0 and scratch = Array.make m 0.0 in
  Lp.Lu.solve lu ~b ~x ~scratch;
  Alcotest.(check (array (float 1e-12))) "identity solve" b x

let test_lu_permutation () =
  (* a permutation matrix exercises pivoting *)
  let m = 4 in
  let perm = [| 2; 0; 3; 1 |] in
  let lu = Lp.Lu.factor ~m (fun k f -> f perm.(k) 1.0) in
  let b = [| 10.0; 20.0; 30.0; 40.0 |] in
  let x = Array.make m 0.0 and scratch = Array.make m 0.0 in
  Lp.Lu.solve lu ~b ~x ~scratch;
  (* x.(k) should satisfy column perm: B x = b where B e_k = e_{perm k} *)
  for k = 0 to m - 1 do
    check_float "perm solve" b.(perm.(k)) x.(k)
  done

(* Regression: during elimination a workspace entry can cancel to exactly
   0.0 and later refill; the factorization must not register that row
   twice (it once did, duplicating L entries and corrupting solves on the
   ±1-structured bases LP problems produce). *)
let test_lu_exact_cancellation () =
  let m = 4 in
  let cols =
    [|
      [ (0, 1.0); (2, 2.0) ];
      [ (0, 1.0); (1, 3.0) ];
      [ (0, 1.0); (1, 3.0); (2, 2.0); (3, 5.0) ];
      [ (0, 1.0) ];
    |]
  in
  let col_iter k f = List.iter (fun (i, v) -> f i v) cols.(k) in
  let lu = Lp.Lu.factor ~m col_iter in
  Alcotest.(check (list (pair int int))) "no replaced" [] lu.Lp.Lu.replaced;
  let b = [| 1.0; -2.0; 3.0; 0.5 |] in
  let x = Array.make m 0.0 and scratch = Array.make m 0.0 in
  Lp.Lu.solve lu ~b ~x ~scratch;
  for i = 0 to m - 1 do
    let s = ref 0.0 in
    for k = 0 to m - 1 do
      List.iter (fun (r, v) -> if r = i then s := !s +. (v *. x.(k))) cols.(k)
    done;
    if Float.abs (!s -. b.(i)) > 1e-10 then
      Alcotest.failf "cancellation residual %g at row %d" (!s -. b.(i)) i
  done

let test_lu_singular_replaced () =
  (* column 1 duplicates column 0: expect one replacement *)
  let m = 3 in
  let cols = [| [ (0, 1.0); (1, 1.0) ]; [ (0, 1.0); (1, 1.0) ]; [ (2, 1.0) ] |] in
  let lu = Lp.Lu.factor ~m (fun k f -> List.iter (fun (i, v) -> f i v) cols.(k)) in
  Alcotest.(check int) "one replaced" 1 (List.length lu.Lp.Lu.replaced)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_compile () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:0.0 ~ub:4.0 ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~lb:0.0 ~obj:(-2.0) "y" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Le 6.0;
  Lp.Model.add_constr m [ (1.0, y) ] Lp.Model.Le 3.0;
  let p = Lp.Model.compile m in
  Alcotest.(check int) "nv" 2 p.Lp.Model.nv;
  Alcotest.(check int) "nr" 2 p.Lp.Model.nr;
  check_float "obj x" (-1.0) p.Lp.Model.obj.(x);
  check_float "ub x" 4.0 p.Lp.Model.ub.(x);
  Alcotest.(check bool) "feasible pt" true
    (Lp.Model.feasible p [| 1.0; 1.0 |]);
  Alcotest.(check bool) "infeasible pt" false
    (Lp.Model.feasible p [| 5.0; 5.0 |])

(* ------------------------------------------------------------------ *)
(* Solvers: fixed small instances solved by hand                       *)
(* ------------------------------------------------------------------ *)

(* max x + 2y st x + y <= 6, y <= 3, 0 <= x <= 4 -> x=3? no:
   maximize x+2y: y=3, x=3 -> obj 9. As min: -9. *)
let model_basic () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:0.0 ~ub:4.0 ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~lb:0.0 ~obj:(-2.0) "y" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Le 6.0;
  Lp.Model.add_constr m [ (1.0, y) ] Lp.Model.Le 3.0;
  Lp.Model.compile m

let test_dense_basic () =
  let r = Lp.Dense_simplex.solve (model_basic ()) in
  Alcotest.(check bool) "optimal" true (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Optimal);
  check_float "objective" (-9.0) r.Lp.Dense_simplex.objective

let test_revised_basic () =
  let r = Lp.Revised.solve (model_basic ()) in
  Alcotest.(check bool) "optimal" true (r.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "objective" (-9.0) r.Lp.Revised.objective;
  check_float "x" 3.0 r.Lp.Revised.x.(0);
  check_float "y" 3.0 r.Lp.Revised.x.(1)

(* min x + y st x + y >= 2, x - y = 0 -> x = y = 1 *)
let model_eq_ge () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:1.0 "x" in
  let y = Lp.Model.add_var m ~obj:1.0 "y" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Ge 2.0;
  Lp.Model.add_constr m [ (1.0, x); (-1.0, y) ] Lp.Model.Eq 0.0;
  Lp.Model.compile m

let test_dense_eq_ge () =
  let r = Lp.Dense_simplex.solve (model_eq_ge ()) in
  check_float "objective" 2.0 r.Lp.Dense_simplex.objective

let test_revised_eq_ge () =
  let r = Lp.Revised.solve (model_eq_ge ()) in
  Alcotest.(check bool) "optimal" true (r.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "objective" 2.0 r.Lp.Revised.objective;
  check_float "x" 1.0 r.Lp.Revised.x.(0)

let test_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:0.0 ~ub:1.0 ~obj:1.0 "x" in
  Lp.Model.add_constr m [ (1.0, x) ] Lp.Model.Ge 2.0;
  let p = Lp.Model.compile m in
  Alcotest.(check bool) "dense infeasible" true
    (Lp.Dense_simplex.(solve p).status = Lp.Dense_simplex.Infeasible);
  Alcotest.(check bool) "revised infeasible" true
    (Lp.Revised.(solve p).status = Lp.Revised.Infeasible)

let test_unbounded () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~obj:0.0 "y" in
  Lp.Model.add_constr m [ (1.0, x); (-1.0, y) ] Lp.Model.Le 1.0;
  let p = Lp.Model.compile m in
  Alcotest.(check bool) "dense unbounded" true
    (Lp.Dense_simplex.(solve p).status = Lp.Dense_simplex.Unbounded);
  Alcotest.(check bool) "revised unbounded" true
    (Lp.Revised.(solve p).status = Lp.Revised.Unbounded)


let test_beale_cycling_example () =
  (* Beale's classic degenerate LP cycles under textbook Dantzig pivoting
     without anti-cycling protection; the Bland fallback must terminate
     at the optimum -0.05 (x3 = 1). *)
  let m = Lp.Model.create () in
  let x0 = Lp.Model.add_var m ~obj:(-0.75) "x0" in
  let x1 = Lp.Model.add_var m ~obj:150.0 "x1" in
  let x2 = Lp.Model.add_var m ~obj:(-0.02) "x2" in
  let x3 = Lp.Model.add_var m ~obj:6.0 "x3" in
  Lp.Model.add_constr m
    [ (0.25, x0); (-60.0, x1); (-0.04, x2); (9.0, x3) ]
    Lp.Model.Le 0.0;
  Lp.Model.add_constr m
    [ (0.5, x0); (-90.0, x1); (-0.02, x2); (3.0, x3) ]
    Lp.Model.Le 0.0;
  Lp.Model.add_constr m [ (1.0, x2) ] Lp.Model.Le 1.0;
  let p = Lp.Model.compile m in
  let rr = Lp.Revised.solve p in
  Alcotest.(check bool) "terminates optimal" true
    (rr.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "objective -1/20" (-0.05) rr.Lp.Revised.objective;
  let rd = Lp.Dense_simplex.solve p in
  check_float "oracle agrees" rd.Lp.Dense_simplex.objective
    rr.Lp.Revised.objective

let test_free_variable () =
  (* min x st x >= -5 handled via a free var and a constraint *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:Float.neg_infinity ~obj:1.0 "x" in
  Lp.Model.add_constr m [ (1.0, x) ] Lp.Model.Ge (-5.0);
  let p = Lp.Model.compile m in
  let rd = Lp.Dense_simplex.solve p in
  check_float "dense obj" (-5.0) rd.Lp.Dense_simplex.objective;
  let rr = Lp.Revised.solve p in
  check_float "revised obj" (-5.0) rr.Lp.Revised.objective

let test_negative_bounds () =
  (* min x + y with x in [-3,-1], y in [-2, 2], x + y >= -4 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:(-3.0) ~ub:(-1.0) ~obj:1.0 "x" in
  let y = Lp.Model.add_var m ~lb:(-2.0) ~ub:2.0 ~obj:1.0 "y" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Ge (-4.0);
  let p = Lp.Model.compile m in
  let rd = Lp.Dense_simplex.solve p in
  check_float "dense obj" (-4.0) rd.Lp.Dense_simplex.objective;
  let rr = Lp.Revised.solve p in
  Alcotest.(check bool) "optimal" true (rr.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "revised obj" (-4.0) rr.Lp.Revised.objective

let test_degenerate () =
  (* multiple redundant constraints through the optimum *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~obj:(-1.0) "y" in
  Lp.Model.add_constr m [ (1.0, x) ] Lp.Model.Le 1.0;
  Lp.Model.add_constr m [ (1.0, y) ] Lp.Model.Le 1.0;
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Le 2.0;
  Lp.Model.add_constr m [ (2.0, x); (2.0, y) ] Lp.Model.Le 4.0;
  let p = Lp.Model.compile m in
  let rr = Lp.Revised.solve p in
  check_float "objective" (-2.0) rr.Lp.Revised.objective

(* ------------------------------------------------------------------ *)
(* Differential and property tests                                    *)
(* ------------------------------------------------------------------ *)

(* Random LP in inequality form with x >= 0 and rows a.x <= b, b >= 0:
   always feasible at x = 0 and bounded when costs are >= 0... we instead
   bound the feasible set with sum x <= K so any cost is safe. *)
let random_model rng =
  let nv = 1 + QCheck.Gen.int_bound 6 rng in
  let nr = 1 + QCheck.Gen.int_bound 6 rng in
  let m = Lp.Model.create () in
  let vars =
    Array.init nv (fun j ->
        let obj = QCheck.Gen.float_range (-5.0) 5.0 rng in
        let ub =
          if QCheck.Gen.bool rng then Float.infinity
          else QCheck.Gen.float_range 0.5 8.0 rng
        in
        Lp.Model.add_var m ~lb:0.0 ~ub ~obj (Printf.sprintf "x%d" j))
  in
  Lp.Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Lp.Model.Le
    (4.0 +. QCheck.Gen.float_bound_inclusive 10.0 rng);
  for _ = 1 to nr do
    let terms =
      Array.to_list
        (Array.map (fun v -> (QCheck.Gen.float_range (-3.0) 3.0 rng, v)) vars)
    in
    let sense =
      match QCheck.Gen.int_bound 2 rng with
      | 0 -> Lp.Model.Le
      | 1 -> Lp.Model.Ge
      | _ -> Lp.Model.Eq
    in
    let rhs =
      match sense with
      | Lp.Model.Le -> QCheck.Gen.float_bound_inclusive 10.0 rng
      | Lp.Model.Ge -> -.QCheck.Gen.float_bound_inclusive 10.0 rng
      | Lp.Model.Eq -> 0.0
    in
    Lp.Model.add_constr m terms sense rhs
  done;
  Lp.Model.compile m

let prop_differential =
  QCheck.Test.make ~count:300 ~name:"dense and revised simplex agree"
    QCheck.(make (fun rng -> random_model rng))
    (fun p ->
      let rd = Lp.Dense_simplex.solve p in
      let rr = Lp.Revised.solve p in
      match (rd.Lp.Dense_simplex.status, rr.Lp.Revised.status) with
      | Lp.Dense_simplex.Optimal, Lp.Revised.Optimal ->
          if not (Lp.Model.feasible ~tol:1e-5 p rr.Lp.Revised.x) then
            QCheck.Test.fail_report "revised solution infeasible"
          else if
            Float.abs (rd.Lp.Dense_simplex.objective -. rr.Lp.Revised.objective)
            > 1e-4 *. (1.0 +. Float.abs rd.Lp.Dense_simplex.objective)
          then
            QCheck.Test.fail_reportf "objectives differ: dense %g revised %g"
              rd.Lp.Dense_simplex.objective rr.Lp.Revised.objective
          else true
      | Lp.Dense_simplex.Infeasible, Lp.Revised.Infeasible -> true
      | Lp.Dense_simplex.Unbounded, Lp.Revised.Unbounded -> true
      | sd, sr ->
          QCheck.Test.fail_reportf "status mismatch: dense %s revised %s"
            (match sd with
            | Lp.Dense_simplex.Optimal -> "optimal"
            | Lp.Dense_simplex.Infeasible -> "infeasible"
            | Lp.Dense_simplex.Unbounded -> "unbounded")
            (Fmt.str "%a" Lp.Revised.pp_status sr))

(* Guaranteed-feasible, guaranteed-bounded random LPs: every variable is
   boxed, and each row is constructed to hold at a known witness point
   x*, so both solvers must return Optimal — a sharper oracle than
   [prop_differential] (which mostly exercises status agreement) and the
   safety net for any solver-state-sharing bug the domain pool could
   introduce.  Tolerance 1e-6 relative. *)
let random_feasible_model rng =
  let nv = 1 + QCheck.Gen.int_bound 5 rng in
  let nr = 1 + QCheck.Gen.int_bound 5 rng in
  let m = Lp.Model.create () in
  let xstar = Array.init nv (fun _ -> QCheck.Gen.float_range 0.0 4.0 rng) in
  let vars =
    Array.init nv (fun j ->
        let ub = xstar.(j) +. QCheck.Gen.float_range 0.5 6.0 rng in
        let obj = QCheck.Gen.float_range (-4.0) 4.0 rng in
        Lp.Model.add_var m ~lb:0.0 ~ub ~obj (Printf.sprintf "x%d" j))
  in
  for _ = 1 to nr do
    let coefs =
      Array.init nv (fun _ -> QCheck.Gen.float_range (-2.0) 2.0 rng)
    in
    let at_star = ref 0.0 in
    Array.iteri (fun j c -> at_star := !at_star +. (c *. xstar.(j))) coefs;
    let terms =
      Array.to_list (Array.mapi (fun j v -> (coefs.(j), v)) vars)
    in
    (match QCheck.Gen.int_bound 2 rng with
    | 0 ->
        Lp.Model.add_constr m terms Lp.Model.Le
          (!at_star +. QCheck.Gen.float_bound_inclusive 5.0 rng)
    | 1 ->
        Lp.Model.add_constr m terms Lp.Model.Ge
          (!at_star -. QCheck.Gen.float_bound_inclusive 5.0 rng)
    | _ -> Lp.Model.add_constr m terms Lp.Model.Eq !at_star);
    ()
  done;
  Lp.Model.compile m

let prop_differential_feasible =
  QCheck.Test.make ~count:300
    ~name:"dense and revised agree to 1e-6 on feasible LPs"
    QCheck.(make (fun rng -> random_feasible_model rng))
    (fun p ->
      let rd = Lp.Dense_simplex.solve p in
      let rr = Lp.Revised.solve p in
      match (rd.Lp.Dense_simplex.status, rr.Lp.Revised.status) with
      | Lp.Dense_simplex.Optimal, Lp.Revised.Optimal ->
          if not (Lp.Model.feasible ~tol:1e-6 p rr.Lp.Revised.x) then
            QCheck.Test.fail_report "revised solution infeasible"
          else if
            Float.abs (rd.Lp.Dense_simplex.objective -. rr.Lp.Revised.objective)
            > 1e-6 *. (1.0 +. Float.abs rd.Lp.Dense_simplex.objective)
          then
            QCheck.Test.fail_reportf "objectives differ: dense %.9g revised %.9g"
              rd.Lp.Dense_simplex.objective rr.Lp.Revised.objective
          else true
      | sd, sr ->
          QCheck.Test.fail_reportf
            "constructed-feasible LP not Optimal/Optimal: dense %s revised %s"
            (match sd with
            | Lp.Dense_simplex.Optimal -> "optimal"
            | Lp.Dense_simplex.Infeasible -> "infeasible"
            | Lp.Dense_simplex.Unbounded -> "unbounded")
            (Fmt.str "%a" Lp.Revised.pp_status sr))

let prop_duality =
  QCheck.Test.make ~count:200 ~name:"strong duality identity holds"
    QCheck.(make (fun rng -> random_model rng))
    (fun p ->
      let r = Lp.Revised.solve p in
      match r.Lp.Revised.status with
      | Lp.Revised.Optimal ->
          (* objective = y.b + sum over nonbasic-at-bound structural vars of
             dj * xj.  We verify the weaker but solver-independent bound
             check: c.x >= y.b + sum_j min(dj*lb, dj*ub) for feasible dj
             signs -- in practice we check the exact identity. *)
          let yb = ref 0.0 in
          Array.iteri
            (fun i yi -> yb := !yb +. (yi *. p.Lp.Model.row_rhs.(i)))
            r.Lp.Revised.y;
          let corr = ref 0.0 in
          Array.iteri
            (fun j dj ->
              if Float.abs dj > 1e-7 then
                corr := !corr +. (dj *. r.Lp.Revised.x.(j)))
            r.Lp.Revised.dj;
          let lhs = r.Lp.Revised.objective in
          let rhs = !yb +. !corr in
          if Float.abs (lhs -. rhs) > 1e-4 *. (1.0 +. Float.abs lhs) then
            QCheck.Test.fail_reportf "duality identity: %g vs %g" lhs rhs
          else true
      | _ -> true)


(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let test_presolve_fixed_vars () =
  (* x fixed at 2 by bounds; min y st y >= x -> 2 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:2.0 ~ub:2.0 ~obj:0.0 "x" in
  let y = Lp.Model.add_var m ~obj:1.0 "y" in
  Lp.Model.add_constr m [ (1.0, y); (-1.0, x) ] Lp.Model.Ge 0.0;
  let p = Lp.Model.compile m in
  (match Lp.Presolve.reduce p with
  | Lp.Presolve.Reduced r ->
      (* x is fixed by bounds; the row then becomes the singleton
         [y >= 2], is turned into a bound, and y (now an empty column)
         is fixed at it: presolve solves this instance entirely *)
      Alcotest.(check int) "both columns dropped" 2 r.Lp.Presolve.dropped_cols;
      Alcotest.(check int) "row dropped" 1 r.Lp.Presolve.dropped_rows
  | Lp.Presolve.Proven_infeasible -> Alcotest.fail "not infeasible");
  let r = Lp.Presolve.solve p in
  check_float "objective" 2.0 r.Lp.Revised.objective;
  check_float "x restored" 2.0 r.Lp.Revised.x.(0);
  check_float "y" 2.0 r.Lp.Revised.x.(1)

let test_presolve_singleton_row () =
  (* 2x <= 6 becomes x <= 3; min -x -> -3 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:(-1.0) "x" in
  Lp.Model.add_constr m [ (2.0, x) ] Lp.Model.Le 6.0;
  let p = Lp.Model.compile m in
  (match Lp.Presolve.reduce p with
  | Lp.Presolve.Reduced r ->
      Alcotest.(check int) "row dropped" 1 r.Lp.Presolve.dropped_rows;
      (* the dropped row became a bound, then the empty column was fixed *)
      Alcotest.(check int) "no rows left" 0 r.Lp.Presolve.problem.Lp.Model.nr
  | Lp.Presolve.Proven_infeasible -> Alcotest.fail "not infeasible");
  let r = Lp.Presolve.solve p in
  check_float "objective" (-3.0) r.Lp.Revised.objective

let test_presolve_detects_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:0.0 ~ub:1.0 "x" in
  Lp.Model.add_constr m [ (1.0, x) ] Lp.Model.Ge 5.0;
  let p = Lp.Model.compile m in
  match Lp.Presolve.reduce p with
  | Lp.Presolve.Proven_infeasible -> ()
  | Lp.Presolve.Reduced _ ->
      (* bound conflict must surface at the latest in the solve *)
      let r = Lp.Presolve.solve p in
      Alcotest.(check bool) "infeasible" true
        (r.Lp.Revised.status = Lp.Revised.Infeasible)


let test_presolve_doubleton_chain () =
  (* x + y = 4, y - z = 1, min x + z subject to z in [0, 2]:
     y = z + 1, x = 4 - y = 3 - z; objective = (3 - z) + z = 3 constant,
     any feasible z works; check restored consistency instead *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:Float.neg_infinity ~obj:1.0 "x" in
  let y = Lp.Model.add_var m ~lb:Float.neg_infinity "y" in
  let z = Lp.Model.add_var m ~lb:0.0 ~ub:2.0 ~obj:1.0 "z" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Eq 4.0;
  Lp.Model.add_constr m [ (1.0, y); (-1.0, z) ] Lp.Model.Eq 1.0;
  let p = Lp.Model.compile m in
  (match Lp.Presolve.reduce p with
  | Lp.Presolve.Reduced r ->
      Alcotest.(check int) "both equality rows eliminated" 2
        r.Lp.Presolve.dropped_rows;
      Alcotest.(check bool) "at least two columns gone" true
        (r.Lp.Presolve.dropped_cols >= 2)
  | Lp.Presolve.Proven_infeasible -> Alcotest.fail "not infeasible");
  let r = Lp.Presolve.solve p in
  Alcotest.(check bool) "optimal" true (r.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "objective" 3.0 r.Lp.Revised.objective;
  (* restored point satisfies the original equations *)
  check_float "x + y" 4.0 (r.Lp.Revised.x.(0) +. r.Lp.Revised.x.(1));
  check_float "y - z" 1.0 (r.Lp.Revised.x.(1) -. r.Lp.Revised.x.(2));
  ignore (x, y, z)

let test_presolve_doubleton_bound_transfer () =
  (* 2x = y with x in [1, 3]: y must land in [2, 6]; min y -> 2 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:1.0 ~ub:3.0 "x" in
  let y = Lp.Model.add_var m ~lb:Float.neg_infinity ~obj:1.0 "y" in
  Lp.Model.add_constr m [ (2.0, x); (-1.0, y) ] Lp.Model.Eq 0.0;
  let p = Lp.Model.compile m in
  let r = Lp.Presolve.solve p in
  check_float "objective" 2.0 r.Lp.Revised.objective;
  check_float "x" 1.0 r.Lp.Revised.x.(0);
  ignore (x, y)

let prop_presolve_equivalent =
  QCheck.Test.make ~count:300 ~name:"presolve preserves the optimum"
    QCheck.(make (fun rng -> random_model rng))
    (fun p ->
      let direct = Lp.Revised.solve p in
      let pre = Lp.Presolve.solve p in
      match (direct.Lp.Revised.status, pre.Lp.Revised.status) with
      | Lp.Revised.Optimal, Lp.Revised.Optimal ->
          if not (Lp.Model.feasible ~tol:1e-5 p pre.Lp.Revised.x) then
            QCheck.Test.fail_report "presolved solution infeasible"
          else if
            Float.abs (direct.Lp.Revised.objective -. pre.Lp.Revised.objective)
            > 1e-4 *. (1.0 +. Float.abs direct.Lp.Revised.objective)
          then
            QCheck.Test.fail_reportf "objectives differ: %g vs %g"
              direct.Lp.Revised.objective pre.Lp.Revised.objective
          else true
      | Lp.Revised.Infeasible, Lp.Revised.Infeasible -> true
      | Lp.Revised.Unbounded, Lp.Revised.Unbounded -> true
      | a, b ->
          QCheck.Test.fail_reportf "status mismatch: %a vs %a"
            Lp.Revised.pp_status a Lp.Revised.pp_status b)

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)
(* ------------------------------------------------------------------ *)

let test_milp_knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binaries.
     best: a + c = 17 vs b + c = 20 -> 20 *)
  let m = Lp.Model.create () in
  let a = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-10.0) "a" in
  let b = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-13.0) "b" in
  let c = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-7.0) "c" in
  Lp.Model.add_constr m [ (3.0, a); (4.0, b); (2.0, c) ] Lp.Model.Le 6.0;
  let p = Lp.Model.compile m in
  let r = Lp.Milp.solve p in
  Alcotest.(check bool) "optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  check_float "objective" (-20.0) r.Lp.Milp.objective;
  check_float "b" 1.0 r.Lp.Milp.x.(1);
  check_float "c" 1.0 r.Lp.Milp.x.(2)

let test_milp_relaxation_bound () =
  let m = Lp.Model.create () in
  let a = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-5.0) "a" in
  let b = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-4.0) "b" in
  Lp.Model.add_constr m [ (2.0, a); (3.0, b) ] Lp.Model.Le 4.0;
  let p = Lp.Model.compile m in
  let r = Lp.Milp.solve p in
  Alcotest.(check bool) "optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  Alcotest.(check bool) "relaxation lower-bounds milp (min)" true
    (r.Lp.Milp.relaxation <= r.Lp.Milp.objective +. 1e-6)

let test_milp_integer_general () =
  (* min -x - y, x,y integer >= 0, 2x + 5y <= 11, 4x + y <= 9:
     candidates: x=2,y=1 -> -3 ... x=1,y=1 (-2), x=2,y=1: 2*2+5=9<=11,
     8+1=9<=9 ok -> obj -3; x=0,y=2: -2. answer -3. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~integer:true ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~integer:true ~obj:(-1.0) "y" in
  Lp.Model.add_constr m [ (2.0, x); (5.0, y) ] Lp.Model.Le 11.0;
  Lp.Model.add_constr m [ (4.0, x); (1.0, y) ] Lp.Model.Le 9.0;
  let p = Lp.Model.compile m in
  let r = Lp.Milp.solve p in
  check_float "objective" (-3.0) r.Lp.Milp.objective

let test_milp_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:1.0 "x" in
  Lp.Model.add_constr m [ (2.0, x) ] Lp.Model.Ge 3.0;
  let p = Lp.Model.compile m in
  let r = Lp.Milp.solve p in
  Alcotest.(check bool) "infeasible" true (r.Lp.Milp.status = Lp.Milp.Infeasible)

(* Random small binary knapsack; returns the compiled problem together
   with the raw data so properties can brute-force it. *)
let random_binary_knapsack rng =
  let nv = 2 + QCheck.Gen.int_bound 3 rng in
  let m = Lp.Model.create () in
  let obj = Array.init nv (fun _ -> QCheck.Gen.float_range (-5.0) 5.0 rng) in
  let vars =
    Array.init nv (fun j ->
        Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:obj.(j)
          (Printf.sprintf "b%d" j))
  in
  let coefs = Array.init nv (fun _ -> QCheck.Gen.float_range 0.0 4.0 rng) in
  let cap = QCheck.Gen.float_range 1.0 8.0 rng in
  Lp.Model.add_constr m
    (Array.to_list (Array.mapi (fun j v -> (coefs.(j), v)) vars))
    Lp.Model.Le cap;
  (Lp.Model.compile m, obj, coefs, cap)

let prop_milp_vs_bruteforce =
  (* random small binary problems: compare with exhaustive enumeration *)
  QCheck.Test.make ~count:100 ~name:"milp matches brute force on binaries"
    QCheck.(make (fun rng -> rng))
    (fun rng ->
      let p, obj, coefs, cap = random_binary_knapsack rng in
      let nv = p.Lp.Model.nv in
      let r = Lp.Milp.solve p in
      (* brute force *)
      let best = ref Float.infinity in
      for mask = 0 to (1 lsl nv) - 1 do
        let w = ref 0.0 and o = ref 0.0 in
        for j = 0 to nv - 1 do
          if mask land (1 lsl j) <> 0 then begin
            w := !w +. coefs.(j);
            o := !o +. obj.(j)
          end
        done;
        if !w <= cap +. 1e-9 && !o < !best then best := !o
      done;
      match r.Lp.Milp.status with
      | Lp.Milp.Optimal ->
          if Float.abs (r.Lp.Milp.objective -. !best) > 1e-5 then
            QCheck.Test.fail_reportf "milp %g vs brute %g" r.Lp.Milp.objective
              !best
          else true
      | _ -> QCheck.Test.fail_report "milp not optimal on feasible instance")

let prop_milp_warm_equals_cold =
  (* parent-basis warm starts are a pure performance device: the search
     must reach the same status and objective as cold node solves *)
  QCheck.Test.make ~count:100 ~name:"warm-started b&b matches cold b&b"
    QCheck.(make (fun rng -> rng))
    (fun rng ->
      let p, _, _, _ = random_binary_knapsack rng in
      let rw = Lp.Milp.solve ~warm:true p in
      let rc = Lp.Milp.solve ~warm:false p in
      if rw.Lp.Milp.status <> rc.Lp.Milp.status then
        QCheck.Test.fail_report "warm and cold b&b status differ"
      else
        match rw.Lp.Milp.status with
        | Lp.Milp.Optimal ->
            if
              Float.abs (rw.Lp.Milp.objective -. rc.Lp.Milp.objective)
              > 1e-9 *. (1.0 +. Float.abs rc.Lp.Milp.objective)
            then
              QCheck.Test.fail_reportf "objectives differ: warm %.12g cold %.12g"
                rw.Lp.Milp.objective rc.Lp.Milp.objective
            else true
        | _ -> true)

(* A crafted limit-probing instance (solved with [int_tol = 0.3]).  x and
   y sit on the segment x + y <= 1.5, u is near-integral at 0.25 — so
   snapping an "integral" node lifts its objective 0.3 above its bound,
   keeping strictly-better-bound subtrees alive after the first incumbent
   — and the w-chain under x spawns those subtrees one at a time.  The
   integer optimum is (x, y) = (0, 1): objective -2.  With [chain = n],
   n ballast variables t_i are added with rows t_1 >= w2 - 0.5,
   t_{i+1} >= t_i and t_n <= 0.4: feasible (all zero) while w2 <= 0.5,
   but the branch that forces w2 = 1 is infeasible in a way phase-1 only
   discovers after walking the whole chain — a child LP needing ~n
   iterations where the root needs ~8. *)
let milp_limits_model ?(chain = 0) () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-2.0) "y" in
  let u = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-1.2) "u" in
  let w1 = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-0.4) "w1" in
  let w2 = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-0.2) "w2" in
  let w3 = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-1.8) "w3" in
  Lp.Model.add_constr m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.5;
  Lp.Model.add_constr m [ (1.0, u) ] Lp.Model.Le 0.25;
  List.iter
    (fun w ->
      Lp.Model.add_constr m [ (1.0, w) ] Lp.Model.Le 0.45;
      Lp.Model.add_constr m [ (1.0, w); (-1.0, x) ] Lp.Model.Le 0.0)
    [ w1; w2; w3 ];
  if chain > 0 then begin
    let t =
      Array.init chain (fun i ->
          Lp.Model.add_var m ~lb:0.0 ~ub:1.0 ~obj:0.0
            (Printf.sprintf "t%d" i))
    in
    Lp.Model.add_constr m [ (1.0, t.(0)); (-1.0, w2) ] Lp.Model.Ge (-0.5);
    for i = 0 to chain - 2 do
      Lp.Model.add_constr m [ (1.0, t.(i + 1)); (-1.0, t.(i)) ] Lp.Model.Ge 0.0
    done;
    Lp.Model.add_constr m [ (1.0, t.(chain - 1)) ] Lp.Model.Le 0.4
  end;
  Lp.Model.compile m

(* Regression: hitting [max_nodes] must report [Node_limit], never
   [Optimal] — the incumbent, when one exists, is not proven optimal. *)
let test_milp_node_limit_with_incumbent () =
  let p = milp_limits_model () in
  let full = Lp.Milp.solve ~int_tol:0.3 p in
  Alcotest.(check bool) "full search optimal" true
    (full.Lp.Milp.status = Lp.Milp.Optimal);
  check_float "full objective" (-2.0) full.Lp.Milp.objective;
  let r1 = Lp.Milp.solve ~int_tol:0.3 ~max_nodes:1 p in
  Alcotest.(check bool) "tiny budget is inconclusive" true
    (r1.Lp.Milp.status = Lp.Milp.Node_limit);
  (* probe node budgets upward: at some budget the search holds an
     incumbent when the limit fires, and must still say Node_limit *)
  let found = ref false in
  for k = 1 to full.Lp.Milp.nodes do
    if not !found then begin
      let r = Lp.Milp.solve ~int_tol:0.3 ~max_nodes:k p in
      if
        r.Lp.Milp.status = Lp.Milp.Node_limit
        && not (Float.is_nan r.Lp.Milp.objective)
      then begin
        found := true;
        (* the incumbent itself is reported alongside the honest status *)
        check_float "incumbent objective" (-2.0) r.Lp.Milp.objective
      end
    end
  done;
  Alcotest.(check bool) "some budget stops holding an incumbent" true !found

(* Regression: a child LP stopping on its iteration limit silently prunes
   that subtree, so the search is inconclusive — [Node_limit], even
   though an incumbent exists by then. *)
let test_milp_child_iter_limit () =
  let p = milp_limits_model ~chain:30 () in
  let root = Lp.Revised.solve p in
  (* above every feasible node's needs, well below the ballast chain *)
  let lim = root.Lp.Revised.iterations + 10 in
  Alcotest.(check bool) "limit sits inside the designed window" true
    (lim > root.Lp.Revised.iterations && lim < 30);
  let r = Lp.Milp.solve ~int_tol:0.3 ~warm:false ~lp_max_iter:lim p in
  Alcotest.(check bool) "child Iter_limit propagates as Node_limit" true
    (r.Lp.Milp.status = Lp.Milp.Node_limit);
  check_float "incumbent objective still reported" (-2.0) r.Lp.Milp.objective;
  (* the ballast is inert in a full solve *)
  let full = Lp.Milp.solve ~int_tol:0.3 p in
  Alcotest.(check bool) "full search optimal" true
    (full.Lp.Milp.status = Lp.Milp.Optimal);
  check_float "full objective" (-2.0) full.Lp.Milp.objective

(* Pin the budget boundary.  [max_nodes] only interrupts a search whose
   frontier is still open, so statuses are monotone in the budget: below
   some threshold the search is inconclusive ([Node_limit]), at and
   above it the proof completes ([Optimal]) — and an Optimal at budget k
   can never regress at budget k+1.  A budget equal to the full node
   count always suffices. *)
let test_milp_node_budget_boundary () =
  let p = milp_limits_model () in
  let full = Lp.Milp.solve ~int_tol:0.3 p in
  Alcotest.(check bool) "full search optimal" true
    (full.Lp.Milp.status = Lp.Milp.Optimal);
  Alcotest.(check bool) "search is multi-node" true (full.Lp.Milp.nodes > 1);
  let first_opt = ref 0 in
  for k = 1 to full.Lp.Milp.nodes do
    let r = Lp.Milp.solve ~int_tol:0.3 ~max_nodes:k p in
    match r.Lp.Milp.status with
    | Lp.Milp.Optimal ->
        if !first_opt = 0 then first_opt := k;
        check_float "proved objective" (-2.0) r.Lp.Milp.objective
    | Lp.Milp.Node_limit ->
        if !first_opt <> 0 then
          Alcotest.failf "budget %d regressed to Node_limit after Optimal at %d"
            k !first_opt
    | _ -> Alcotest.fail "unexpected status under a node budget"
  done;
  Alcotest.(check bool) "a too-small budget is inconclusive" true
    (!first_opt > 1);
  Alcotest.(check bool) "the full node count always suffices" true
    (!first_opt > 0 && !first_opt <= full.Lp.Milp.nodes)

(* The root relaxation hitting its own iteration limit is inconclusive
   before any incumbent can exist: [Node_limit] with a NaN objective. *)
let test_milp_root_iter_limit () =
  let p = milp_limits_model () in
  let root = Lp.Revised.solve p in
  Alcotest.(check bool) "root needs more than two pivots" true
    (root.Lp.Revised.iterations > 2);
  let r = Lp.Milp.solve ~int_tol:0.3 ~lp_max_iter:2 p in
  Alcotest.(check bool) "root Iter_limit propagates as Node_limit" true
    (r.Lp.Milp.status = Lp.Milp.Node_limit);
  Alcotest.(check bool) "no incumbent to report" true
    (Float.is_nan r.Lp.Milp.objective)

(* ------------------------------------------------------------------ *)
(* Warm starts                                                         *)
(* ------------------------------------------------------------------ *)

let test_warm_rhs_resolve () =
  (* re-solve model_basic with tightened RHS from the previous basis:
     max x + 2y st x + y <= 5, y <= 2.5, x <= 4 -> (2.5, 2.5), obj -7.5 *)
  let p = model_basic () in
  let r0 = Lp.Revised.solve p in
  let b =
    match r0.Lp.Revised.basis with
    | Some b -> b
    | None -> Alcotest.fail "no basis returned"
  in
  let rhs = [| 5.0; 2.5 |] in
  let cold = Lp.Revised.solve ~rhs p in
  let warm = Lp.Revised.solve ~rhs ~warm:b p in
  Alcotest.(check bool) "warm optimal" true
    (warm.Lp.Revised.status = Lp.Revised.Optimal);
  check_float "matches cold" cold.Lp.Revised.objective warm.Lp.Revised.objective;
  check_float "objective" (-7.5) warm.Lp.Revised.objective

let prop_warm_resolve =
  (* the tentpole property: solving a perturbed instance from the
     previous optimal basis agrees with a cold solve of that instance in
     status and (to 1e-6) objective *)
  QCheck.Test.make ~count:300
    ~name:"warm re-solve after rhs/bound perturbation matches cold"
    QCheck.(make (fun rng -> rng))
    (fun rng ->
      let p = random_feasible_model rng in
      let r0 = Lp.Revised.solve p in
      match (r0.Lp.Revised.status, r0.Lp.Revised.basis) with
      | Lp.Revised.Optimal, Some b ->
          let rhs =
            Array.map
              (fun v -> v +. QCheck.Gen.float_range (-0.5) 0.5 rng)
              p.Lp.Model.row_rhs
          in
          let ub =
            Array.mapi
              (fun j u ->
                if Float.is_finite u then
                  Float.max p.Lp.Model.lb.(j)
                    (u +. QCheck.Gen.float_range (-0.3) 0.5 rng)
                else u)
              p.Lp.Model.ub
          in
          let cold = Lp.Revised.solve ~rhs ~ub p in
          let warm = Lp.Revised.solve ~rhs ~ub ~warm:b p in
          if cold.Lp.Revised.status <> warm.Lp.Revised.status then
            QCheck.Test.fail_reportf "status mismatch: cold %a warm %a"
              Lp.Revised.pp_status cold.Lp.Revised.status Lp.Revised.pp_status
              warm.Lp.Revised.status
          else (
            match cold.Lp.Revised.status with
            | Lp.Revised.Optimal ->
                if
                  Float.abs
                    (cold.Lp.Revised.objective -. warm.Lp.Revised.objective)
                  > 1e-6 *. (1.0 +. Float.abs cold.Lp.Revised.objective)
                then
                  QCheck.Test.fail_reportf
                    "objectives differ: cold %.9g warm %.9g"
                    cold.Lp.Revised.objective warm.Lp.Revised.objective
                else true
            | _ -> true)
      | _ -> true)


(* Larger random LPs: exercises refactorization, partial pricing and
   bound flips harder than the small differential test. *)
let random_model_large rng =
  let nv = 15 + QCheck.Gen.int_bound 20 rng in
  let nr = 10 + QCheck.Gen.int_bound 20 rng in
  let m = Lp.Model.create () in
  let vars =
    Array.init nv (fun j ->
        let obj = QCheck.Gen.float_range (-3.0) 3.0 rng in
        let ub =
          if QCheck.Gen.bool rng then Float.infinity
          else QCheck.Gen.float_range 0.5 6.0 rng
        in
        Lp.Model.add_var m ~lb:0.0 ~ub ~obj (Printf.sprintf "x%d" j))
  in
  (* bounded feasible region *)
  Lp.Model.add_constr m
    (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
    Lp.Model.Le
    (10.0 +. QCheck.Gen.float_bound_inclusive 30.0 rng);
  for _ = 1 to nr do
    (* sparse rows: 3-6 terms *)
    let k = 3 + QCheck.Gen.int_bound 3 rng in
    let terms =
      List.init k (fun _ ->
          ( QCheck.Gen.float_range (-2.0) 2.0 rng,
            vars.(QCheck.Gen.int_bound (nv - 1) rng) ))
    in
    let sense =
      match QCheck.Gen.int_bound 2 rng with
      | 0 -> Lp.Model.Le
      | 1 -> Lp.Model.Ge
      | _ -> Lp.Model.Eq
    in
    let rhs =
      match sense with
      | Lp.Model.Le -> QCheck.Gen.float_bound_inclusive 8.0 rng
      | Lp.Model.Ge -> -.QCheck.Gen.float_bound_inclusive 8.0 rng
      | Lp.Model.Eq -> QCheck.Gen.float_range (-1.0) 1.0 rng
    in
    Lp.Model.add_constr m terms sense rhs
  done;
  Lp.Model.compile m

let prop_differential_large =
  QCheck.Test.make ~count:60 ~name:"dense and revised agree on larger LPs"
    QCheck.(make (fun rng -> random_model_large rng))
    (fun p ->
      let rd = Lp.Dense_simplex.solve p in
      let rr = Lp.Presolve.solve p in
      match (rd.Lp.Dense_simplex.status, rr.Lp.Revised.status) with
      | Lp.Dense_simplex.Optimal, Lp.Revised.Optimal ->
          if not (Lp.Model.feasible ~tol:1e-5 p rr.Lp.Revised.x) then
            QCheck.Test.fail_report "revised solution infeasible"
          else if
            Float.abs (rd.Lp.Dense_simplex.objective -. rr.Lp.Revised.objective)
            > 1e-4 *. (1.0 +. Float.abs rd.Lp.Dense_simplex.objective)
          then
            QCheck.Test.fail_reportf "objectives differ: dense %g revised %g"
              rd.Lp.Dense_simplex.objective rr.Lp.Revised.objective
          else true
      | Lp.Dense_simplex.Infeasible, Lp.Revised.Infeasible -> true
      | Lp.Dense_simplex.Unbounded, Lp.Revised.Unbounded -> true
      | sd, sr ->
          QCheck.Test.fail_reportf "status mismatch: dense %s revised %s"
            (match sd with
            | Lp.Dense_simplex.Optimal -> "optimal"
            | Lp.Dense_simplex.Infeasible -> "infeasible"
            | Lp.Dense_simplex.Unbounded -> "unbounded")
            (Fmt.str "%a" Lp.Revised.pp_status sr))

(* ------------------------------------------------------------------ *)
(* MPS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mps_roundtrip_basic () =
  let p = model_basic () in
  let p' = Lp.Mps.of_string (Lp.Mps.to_string p) in
  Alcotest.(check int) "nv" p.Lp.Model.nv p'.Lp.Model.nv;
  Alcotest.(check int) "nr" p.Lp.Model.nr p'.Lp.Model.nr;
  let r = Lp.Revised.solve p and r' = Lp.Revised.solve p' in
  check_float "same optimum" r.Lp.Revised.objective r'.Lp.Revised.objective

let test_mps_integer_markers () =
  let m = Lp.Model.create () in
  let a = Lp.Model.add_var m ~ub:1.0 ~integer:true ~obj:(-10.0) "a" in
  let b = Lp.Model.add_var m ~obj:(-1.0) ~ub:3.5 "b" in
  Lp.Model.add_constr m [ (3.0, a); (1.0, b) ] Lp.Model.Le 5.0;
  let p = Lp.Model.compile m in
  let p' = Lp.Mps.of_string (Lp.Mps.to_string p) in
  Alcotest.(check bool) "a integer" true p'.Lp.Model.integer.(0);
  Alcotest.(check bool) "b continuous" false p'.Lp.Model.integer.(1);
  let r = Lp.Milp.solve p and r' = Lp.Milp.solve p' in
  check_float "same milp optimum" r.Lp.Milp.objective r'.Lp.Milp.objective;
  ignore (a, b)

let test_mps_parse_fixed_example () =
  (* hand-written instance: max x + y st x + 2y <= 4 (as min -x - y) *)
  let text =
    "* a comment line\n\
     NAME test\n\
     ROWS\n\
     \ N  COST\n\
     \ L  LIM\n\
     COLUMNS\n\
     \    X  COST  -1.0  LIM  1.0\n\
     \    Y  COST  -1.0  LIM  2.0\n\
     RHS\n\
     \    RHS1  LIM  4.0\n\
     BOUNDS\n\
     ENDATA\n"
  in
  let p = Lp.Mps.of_string text in
  Alcotest.(check int) "two vars" 2 p.Lp.Model.nv;
  Alcotest.(check int) "one row" 1 p.Lp.Model.nr;
  let r = Lp.Revised.solve p in
  check_float "optimum" (-4.0) r.Lp.Revised.objective

let test_mps_rejects_garbage () =
  (match Lp.Mps.of_string "ROWS\njunk\n" with
  | exception Lp.Mps.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  match Lp.Mps.of_string "NAME x\nROWS\n N OBJ\nCOLUMNS\nRHS\nBOUNDS\n" with
  | exception Lp.Mps.Parse_error _ -> () (* missing ENDATA *)
  | _ -> Alcotest.fail "expected parse error for missing ENDATA"

let prop_mps_roundtrip =
  QCheck.Test.make ~count:150 ~name:"mps roundtrip preserves the optimum"
    QCheck.(make (fun rng -> random_model rng))
    (fun p ->
      let p' = Lp.Mps.of_string (Lp.Mps.to_string p) in
      let r = Lp.Revised.solve p and r' = Lp.Revised.solve p' in
      match (r.Lp.Revised.status, r'.Lp.Revised.status) with
      | Lp.Revised.Optimal, Lp.Revised.Optimal ->
          if
            Float.abs (r.Lp.Revised.objective -. r'.Lp.Revised.objective)
            > 1e-5 *. (1.0 +. Float.abs r.Lp.Revised.objective)
          then
            QCheck.Test.fail_reportf "objective drift: %g vs %g"
              r.Lp.Revised.objective r'.Lp.Revised.objective
          else true
      | a, b ->
          if a = b then true
          else
            QCheck.Test.fail_reportf "status mismatch %a vs %a"
              Lp.Revised.pp_status a Lp.Revised.pp_status b)

(* A structured LP shaped like the paper's event formulation, large enough
   to exercise refactorization. *)
(* v_0 .. v_n: event times; d_i in [1,3] chosen by a blend variable —
   the same time-chained shape as the event LPs, reused by the env-knob
   tests below because it runs enough pivots to hit the eta limit. *)
let chain_model n =
  let m = Lp.Model.create () in
  let v = Array.init (n + 1) (fun i -> Lp.Model.add_var m (Printf.sprintf "v%d" i)) in
  let blend = Array.init n (fun i -> Lp.Model.add_var m ~ub:1.0 (Printf.sprintf "c%d" i)) in
  Lp.Model.add_constr m [ (1.0, v.(0)) ] Lp.Model.Eq 0.0;
  for i = 0 to n - 1 do
    (* v_{i+1} - v_i >= 3 - 2 * blend_i  (blend buys speed) *)
    Lp.Model.add_constr m
      [ (1.0, v.(i + 1)); (-1.0, v.(i)); (2.0, blend.(i)) ]
      Lp.Model.Ge 3.0;
    ignore
      (Lp.Model.add_constr m [ (1.0, blend.(i)) ] Lp.Model.Le 1.0)
  done;
  (* power budget: sum of blends <= n/2 *)
  Lp.Model.add_constr m
    (Array.to_list (Array.map (fun b -> (1.0, b)) blend))
    Lp.Model.Le
    (Float.of_int n /. 2.0);
  Lp.Model.set_obj m v.(n) 1.0;
  Lp.Model.compile m

let test_revised_chain_large () =
  let n = 120 in
  let p = chain_model n in
  let r = Lp.Revised.solve p in
  Alcotest.(check bool) "optimal" true (r.Lp.Revised.status = Lp.Revised.Optimal);
  (* optimum: n/2 tasks at duration 1, n/2 at 3 -> makespan 2n *)
  check_float "objective" (2.0 *. Float.of_int n) r.Lp.Revised.objective

(* ------------------------------------------------------------------ *)
(* Hypersparse kernels and solver env knobs                            *)
(* ------------------------------------------------------------------ *)

let test_coo_zero_grows_dims () =
  let c = Lp.Sparse.Coo.create () in
  Lp.Sparse.Coo.add c 0 0 1.0;
  (* an explicit zero carries no storage but must still grow the shape *)
  Lp.Sparse.Coo.add c 4 6 0.0;
  let m = Lp.Sparse.Csc.of_coo c in
  Alcotest.(check int) "nrows" 5 m.Lp.Sparse.Csc.nrows;
  Alcotest.(check int) "ncols" 7 m.Lp.Sparse.Csc.ncols;
  Alcotest.(check int) "nnz" 1 (Lp.Sparse.Csc.nnz m)

(* The sparse triangular solves must agree with the dense kernels to the
   last bit: [Revised] mixes the two paths freely (per-call cutoffs and
   adaptive switching), so any divergence would break the determinism
   guarantee.  Repeated solves share one [swork] to expose stale-stamp
   leaks between calls. *)
let lu_sparse_vs_dense m density seed =
  let rng = Random.State.make [| seed |] in
  let a = random_sparse_matrix rng m density in
  let col_iter k f =
    for i = 0 to m - 1 do
      if a.(i).(k) <> 0.0 then f i a.(i).(k)
    done
  in
  let lu = Lp.Lu.factor ~m col_iter in
  let sw = Lp.Lu.make_swork m in
  let scratch = Array.make m 0.0 in
  let b = Array.make m 0.0 in
  let xs = Array.make m 0.0 and xind = Array.make m 0 in
  let xd = Array.make m 0.0 in
  let xs_n = ref (-1) in
  let seen = Array.make m false in
  for trial = 0 to 19 do
    (* sparse rhs with up to 3 distinct nonzero positions *)
    let bidx = Array.make 3 0 in
    let nb = ref 0 in
    for t = 0 to trial mod 3 do
      let i = ((trial * 13) + (t * 17)) mod m in
      if not seen.(i) then begin
        seen.(i) <- true;
        bidx.(!nb) <- i;
        incr nb;
        b.(i) <- 1.5 +. Float.of_int ((i + t) mod 4)
      end
    done;
    (* clear the previous solve's support, per the solve_sp contract *)
    (match !xs_n with
    | -1 -> Array.fill xs 0 m 0.0
    | n ->
        for t = 0 to n - 1 do
          xs.(xind.(t)) <- 0.0
        done);
    let r = Lp.Lu.solve_sp lu sw ~nb:!nb ~bidx ~b ~x:xs ~xind in
    xs_n := r;
    Lp.Lu.solve lu ~b ~x:xd ~scratch;
    for k = 0 to m - 1 do
      if xs.(k) <> xd.(k) then
        Alcotest.failf "solve_sp diverges at %d: %h vs %h (trial %d, r %d)"
          k xs.(k) xd.(k) trial r
    done;
    (* transpose solve through the same workspace *)
    let ys = Array.make m 0.0 and yind = Array.make m 0 in
    let yd = Array.make m 0.0 in
    let rt = Lp.Lu.solve_t_sp lu sw ~nc:!nb ~cidx:bidx ~c:b ~y:ys ~yind in
    Lp.Lu.solve_t lu ~c:b ~y:yd ~scratch;
    for k = 0 to m - 1 do
      if ys.(k) <> yd.(k) then
        Alcotest.failf "solve_t_sp diverges at %d: %h vs %h (trial %d, r %d)"
          k ys.(k) yd.(k) trial rt
    done;
    for t = 0 to !nb - 1 do
      seen.(bidx.(t)) <- false;
      b.(bidx.(t)) <- 0.0
    done
  done

let test_lu_sp_hypersparse () = lu_sparse_vs_dense 80 0.03 11
let test_lu_sp_mixed () = lu_sparse_vs_dense 60 0.1 7
let test_lu_sp_dense_fallback () = lu_sparse_vs_dense 30 0.6 5

(* Both elimination strategies in [factor] perform the same FP
   operations in the same order, so the factors they build must be
   bitwise identical. *)
let test_lu_factor_symbolic_identical () =
  for seed = 0 to 4 do
    let m = 40 in
    let rng = Random.State.make [| 100 + seed |] in
    let a = random_sparse_matrix rng m 0.15 in
    let col_iter k f =
      for i = 0 to m - 1 do
        if a.(i).(k) <> 0.0 then f i a.(i).(k)
      done
    in
    let f_sym = Lp.Lu.factor ~m col_iter in
    let f_scan = Lp.Lu.factor ~symbolic:false ~m col_iter in
    let b = Array.init m (fun i -> Float.of_int ((i + seed) mod 7) -. 3.0) in
    let x1 = Array.make m 0.0 and x2 = Array.make m 0.0 in
    let scratch = Array.make m 0.0 in
    Lp.Lu.solve f_sym ~b ~x:x1 ~scratch;
    Lp.Lu.solve f_scan ~b ~x:x2 ~scratch;
    for k = 0 to m - 1 do
      if x1.(k) <> x2.(k) then
        Alcotest.failf "symbolic factor diverges at %d: %h vs %h (seed %d)"
          k x1.(k) x2.(k) seed
    done
  done

(* Scoped env override: [restore] is the value put back afterwards when
   the variable was unset before (putenv cannot unset), chosen to match
   each knob's documented default. *)
let with_env kvs f =
  let saved =
    List.map (fun (k, _, restore) -> (k, Sys.getenv_opt k, restore)) kvs
  in
  List.iter (fun (k, v, _) -> Unix.putenv k v) kvs;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, old, restore) ->
          Unix.putenv k (Option.value old ~default:restore))
        saved)

(* Differential oracle across the solver's env knobs: the default path
   (hypersparse kernels + devex pricing) may pivot differently from the
   dense + Dantzig path, but statuses must agree and optimal objectives
   must match to 1e-9. *)
let prop_env_differential =
  QCheck.Test.make ~count:100
    ~name:"hypersparse+devex agrees with dense+dantzig"
    QCheck.(make (fun rng -> random_feasible_model rng))
    (fun p ->
      let r_new = Lp.Revised.solve p in
      let r_old =
        with_env
          [
            ("POWERLIM_HYPERSPARSE", "0", "1"); ("POWERLIM_DEVEX", "0", "1");
          ]
          (fun () -> Lp.Revised.solve p)
      in
      if r_old.Lp.Revised.status <> r_new.Lp.Revised.status then
        QCheck.Test.fail_reportf "status mismatch: %a vs %a"
          Lp.Revised.pp_status r_old.Lp.Revised.status Lp.Revised.pp_status
          r_new.Lp.Revised.status
      else
        match r_old.Lp.Revised.status with
        | Lp.Revised.Optimal ->
            let d =
              Float.abs (r_old.Lp.Revised.objective -. r_new.Lp.Revised.objective)
              /. (1.0 +. Float.abs r_old.Lp.Revised.objective)
            in
            if d > 1e-9 then
              QCheck.Test.fail_reportf "objectives differ by %g: %g vs %g" d
                r_old.Lp.Revised.objective r_new.Lp.Revised.objective
            else true
        | _ -> true)

(* Differential oracle over the factorization-update strategies: the
   Forrest–Tomlin path (default), the product-form eta file
   (POWERLIM_FT=0) and full refactorization after every pivot
   (POWERLIM_FT=0 + POWERLIM_ETA_LIMIT=1 — the slow exact reference)
   must agree on status everywhere and on optimal objectives to 1e-9.
   [random_model] includes infeasible and unbounded instances, so the
   phase-1 and dual paths run under every strategy too. *)
let prop_ft_differential =
  QCheck.Test.make ~count:200
    ~name:"FT, eta-file and full-refactorization paths agree"
    QCheck.(make (fun rng -> random_model rng))
    (fun p ->
      let solve_with kvs = with_env kvs (fun () -> Lp.Revised.solve p) in
      let r_ft = solve_with [ ("POWERLIM_FT", "1", "") ] in
      let r_eta = solve_with [ ("POWERLIM_FT", "0", "") ] in
      let r_full =
        solve_with [ ("POWERLIM_FT", "0", ""); ("POWERLIM_ETA_LIMIT", "1", "") ]
      in
      let pairs = [ ("eta", r_eta); ("refactor", r_full) ] in
      List.for_all
        (fun (tag, (r : Lp.Revised.result)) ->
          if r.Lp.Revised.status <> r_ft.Lp.Revised.status then
            QCheck.Test.fail_reportf "FT vs %s status: %a vs %a" tag
              Lp.Revised.pp_status r_ft.Lp.Revised.status Lp.Revised.pp_status
              r.Lp.Revised.status
          else
            match r.Lp.Revised.status with
            | Lp.Revised.Optimal ->
                let d =
                  Float.abs (r.Lp.Revised.objective -. r_ft.Lp.Revised.objective)
                  /. (1.0 +. Float.abs r.Lp.Revised.objective)
                in
                if d > 1e-9 then
                  QCheck.Test.fail_reportf "FT vs %s objective differs by %g"
                    tag d
                else true
            | _ -> true)
        pairs)

(* Equilibration round-trip.  Two claims, at different strengths:

   (1) The scaling transformation itself is bitwise exact: factors are
   powers of two, so dividing every scaled coefficient / RHS back by
   its factors (and multiplying bounds) recovers the unscaled reduced
   problem bit for bit — the "scale-aware extraction" guarantee.  The
   reduction decisions themselves cannot differ, since scaling is
   applied after the presolve fixpoint.

   (2) The solved answers agree: scaling may legitimately change the
   pivot {e path} (magnitude-based pivot and ratio comparisons see
   different exponents), so the full re-solve is gated at an exact
   status match and 1e-9 relative on the objective, with the restored
   point feasible in the original units.  (On the event LP the paths
   coincide and CI byte-diffs enforce full output identity.) *)
let prop_scaling_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"power-of-two scaling round-trips exactly and preserves optima"
    QCheck.(make (fun rng -> random_feasible_model rng))
    (fun p ->
      let reduce_scale v =
        with_env [ ("POWERLIM_SCALE", v, "") ] (fun () -> Lp.Presolve.reduce p)
      in
      (match (reduce_scale "1", reduce_scale "0") with
      | Lp.Presolve.Reduced a, Lp.Presolve.Reduced b ->
          if
            a.Lp.Presolve.keep_vars <> b.Lp.Presolve.keep_vars
            || a.Lp.Presolve.kept_rows <> b.Lp.Presolve.kept_rows
          then QCheck.Test.fail_report "scaling changed reduction decisions";
          let pa = a.Lp.Presolve.problem and pb = b.Lp.Presolve.problem in
          let rs = a.Lp.Presolve.row_scale and cs = a.Lp.Presolve.col_scale in
          let ca = pa.Lp.Model.a and cb = pb.Lp.Model.a in
          for j = 0 to pa.Lp.Model.nv - 1 do
            for k = ca.Lp.Sparse.Csc.colptr.(j)
                to ca.Lp.Sparse.Csc.colptr.(j + 1) - 1 do
              let i = ca.Lp.Sparse.Csc.rowind.(k) in
              let back =
                ca.Lp.Sparse.Csc.values.(k) /. (rs.(i) *. cs.(j))
              in
              if back <> cb.Lp.Sparse.Csc.values.(k) then
                QCheck.Test.fail_reportf
                  "matrix entry (%d,%d) does not round-trip: %h vs %h" i j
                  back cb.Lp.Sparse.Csc.values.(k)
            done;
            let lb = pa.Lp.Model.lb.(j) *. cs.(j)
            and ub = pa.Lp.Model.ub.(j) *. cs.(j)
            and ob = pa.Lp.Model.obj.(j) /. cs.(j) in
            if
              lb <> pb.Lp.Model.lb.(j)
              || ub <> pb.Lp.Model.ub.(j)
              || ob <> pb.Lp.Model.obj.(j)
            then
              QCheck.Test.fail_reportf "column %d data does not round-trip" j
          done;
          for i = 0 to pa.Lp.Model.nr - 1 do
            if pa.Lp.Model.row_rhs.(i) /. rs.(i) <> pb.Lp.Model.row_rhs.(i)
            then QCheck.Test.fail_reportf "rhs %d does not round-trip" i
          done
      | Lp.Presolve.Proven_infeasible, Lp.Presolve.Proven_infeasible -> ()
      | _ -> QCheck.Test.fail_report "scaling changed the reduce outcome");
      let solve_scale v =
        with_env [ ("POWERLIM_SCALE", v, "") ] (fun () -> Lp.Presolve.solve p)
      in
      let r_on = solve_scale "1" in
      let r_off = solve_scale "0" in
      if r_on.Lp.Revised.status <> r_off.Lp.Revised.status then
        QCheck.Test.fail_reportf "status mismatch: %a vs %a"
          Lp.Revised.pp_status r_on.Lp.Revised.status Lp.Revised.pp_status
          r_off.Lp.Revised.status
      else begin
        (match r_on.Lp.Revised.status with
        | Lp.Revised.Optimal ->
            let d =
              Float.abs (r_on.Lp.Revised.objective -. r_off.Lp.Revised.objective)
              /. (1.0 +. Float.abs r_off.Lp.Revised.objective)
            in
            if d > 1e-9 then
              QCheck.Test.fail_reportf "objectives differ by %g: %h vs %h" d
                r_on.Lp.Revised.objective r_off.Lp.Revised.objective;
            if not (Lp.Model.feasible ~tol:1e-6 p r_on.Lp.Revised.x) then
              QCheck.Test.fail_report
                "restored scaled solution infeasible in original units"
        | _ -> ());
        true
      end)

(* POWERLIM_ETA_LIMIT moves the refactorization points (and hence FP
   rounding along the pivot path) but never the answer. *)
let test_eta_limit_sanity () =
  let p = chain_model 120 in
  let r0 = Lp.Revised.solve p in
  List.iter
    (fun limit ->
      let r =
        with_env
          [ ("POWERLIM_ETA_LIMIT", limit, "64") ]
          (fun () -> Lp.Revised.solve p)
      in
      Alcotest.(check bool)
        (Printf.sprintf "optimal at eta limit %s" limit)
        true
        (r.Lp.Revised.status = Lp.Revised.Optimal);
      let d =
        Float.abs (r.Lp.Revised.objective -. r0.Lp.Revised.objective)
        /. (1.0 +. Float.abs r0.Lp.Revised.objective)
      in
      if d > 1e-7 then
        Alcotest.failf "eta limit %s moved the objective by %g" limit d)
    [ "4"; "16"; "256" ]

(* Satellite regression: the documented refactorization growth limit is
   2.0 (DESIGN.md section 7) — the code shipped 3.0 for a while.  Pin
   the default, the env override, and the malformed-value fallback. *)
let test_refactor_limit_default () =
  with_env
    [ ("POWERLIM_REFACTOR", "", "") ]
    (fun () ->
      Alcotest.(check (float 0.0)) "documented default" 2.0
        (Lp.Revised.refactor_limit ()));
  with_env
    [ ("POWERLIM_REFACTOR", "4.5", "") ]
    (fun () ->
      Alcotest.(check (float 0.0)) "env override" 4.5
        (Lp.Revised.refactor_limit ()));
  List.iter
    (fun bad ->
      with_env
        [ ("POWERLIM_REFACTOR", bad, "") ]
        (fun () ->
          Putil.Env.reset_warnings ();
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%S falls back to the default" bad)
            2.0
            (Lp.Revised.refactor_limit ());
          Alcotest.(check bool) "and is recorded as rejected" true
            (List.mem_assoc "POWERLIM_REFACTOR" (Putil.Env.rejected ()));
          Putil.Env.reset_warnings ()))
    [ "banana"; "nan"; "inf"; "1.0"; "0.5" ]

(* The limit steers when refactorization happens, never what the solver
   answers: solutions agree across settings. *)
let test_refactor_limit_answer_invariant () =
  let p = chain_model 120 in
  let r0 = Lp.Revised.solve p in
  List.iter
    (fun limit ->
      let r =
        with_env
          [ ("POWERLIM_REFACTOR", limit, "") ]
          (fun () -> Lp.Revised.solve p)
      in
      Alcotest.(check bool)
        (Printf.sprintf "optimal at refactor limit %s" limit)
        true
        (r.Lp.Revised.status = Lp.Revised.Optimal);
      let d =
        Float.abs (r.Lp.Revised.objective -. r0.Lp.Revised.objective)
        /. (1.0 +. Float.abs r0.Lp.Revised.objective)
      in
      if d > 1e-7 then
        Alcotest.failf "refactor limit %s moved the objective by %g" limit d)
    [ "1.1"; "2.0"; "8.0" ]

(* ------------------------------------------------------------------ *)
(* Structural edits (Lp.Edit)                                          *)
(* ------------------------------------------------------------------ *)

(* min -x - 2y, x,y in [0,4], x + y <= 5, y <= 2.5: unique optimum at
   (2.5, 2.5), objective -7.5. *)
let edit_base_model () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:0.0 ~ub:4.0 ~obj:(-1.0) "x" in
  let y = Lp.Model.add_var m ~lb:0.0 ~ub:4.0 ~obj:(-2.0) "y" in
  Lp.Model.add_constr m ~name:"sum" [ (1.0, x); (1.0, y) ] Lp.Model.Le 5.0;
  Lp.Model.add_constr m ~name:"ycap" [ (1.0, y) ] Lp.Model.Le 2.5;
  Lp.Model.compile m

let test_edit_apply_shapes () =
  let p = edit_base_model () in
  (* grow by a column and a row, then shrink both away again *)
  let grown =
    Lp.Edit.apply p
      [
        Lp.Edit.Add_col
          { name = "z"; lb = 0.0; ub = 1.0; obj = -3.0; terms = [ (1.0, 0) ] };
        Lp.Edit.Add_row
          { name = "zcap"; terms = [ (1.0, 2) ]; sense = Lp.Model.Le; rhs = 0.5 };
      ]
  in
  Alcotest.(check (pair int int)) "grown shape" (3, 3)
    (grown.Lp.Model.nv, grown.Lp.Model.nr);
  Alcotest.(check string) "new column named" "z" grown.Lp.Model.var_names.(2);
  Alcotest.(check string) "new row named" "zcap" grown.Lp.Model.row_names.(2);
  let r = Lp.Revised.solve grown in
  (* z = 0.5 displaces 0.5 of x inside the sum row: -7.5 - 3*0.5 + 0.5 *)
  check_float "grown objective" (-8.5) r.Lp.Revised.objective;
  let shrunk = Lp.Edit.apply grown [ Lp.Edit.Remove_row 2; Lp.Edit.Remove_col 2 ] in
  Alcotest.(check (pair int int)) "shrunk shape" (2, 2)
    (shrunk.Lp.Model.nv, shrunk.Lp.Model.nr);
  Alcotest.(check string) "row names compact" "ycap" shrunk.Lp.Model.row_names.(1);
  check_float "shrunk objective restored" (-7.5)
    (Lp.Revised.solve shrunk).Lp.Revised.objective;
  (* coefficient surgery *)
  let patched =
    Lp.Edit.apply p
      [
        Lp.Edit.Set_rhs { row = 0; rhs = 4.5 };
        Lp.Edit.Set_obj { col = 0; obj = -4.0 };
        Lp.Edit.Set_bounds { col = 1; lb = 0.0; ub = 2.0 };
      ]
  in
  (* x dominates: x = 4 (its bound), y = 0.5 fills the sum row *)
  check_float "patched objective" (-17.0)
    (Lp.Revised.solve patched).Lp.Revised.objective;
  (* Set_entry 0 deletes the entry: y leaves the sum row *)
  let deleted =
    Lp.Edit.apply p [ Lp.Edit.Set_entry { row = 0; col = 1; coef = 0.0 } ]
  in
  Alcotest.(check int) "entry deleted" (Lp.Sparse.Csc.nnz p.Lp.Model.a - 1)
    (Lp.Sparse.Csc.nnz deleted.Lp.Model.a);
  check_float "deleted-entry objective" (-9.0)
    (Lp.Revised.solve deleted).Lp.Revised.objective

let test_edit_validation () =
  let p = edit_base_model () in
  let raises what edits =
    match Lp.Edit.apply p edits with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  raises "row out of range" [ Lp.Edit.Remove_row 2 ];
  raises "col out of range" [ Lp.Edit.Set_obj { col = 7; obj = 0.0 } ];
  raises "crossed bounds"
    [ Lp.Edit.Set_bounds { col = 0; lb = 1.0; ub = 0.0 } ];
  raises "NaN coefficient"
    [ Lp.Edit.Set_entry { row = 0; col = 0; coef = Float.nan } ];
  raises "stale index after removal"
    [ Lp.Edit.Remove_row 1; Lp.Edit.Set_rhs { row = 1; rhs = 0.0 } ]

let test_edit_maps () =
  let p = edit_base_model () in
  let edits =
    [
      Lp.Edit.Add_col
        { name = "z"; lb = 0.0; ub = 1.0; obj = 0.0; terms = [] };
      Lp.Edit.Remove_col 0;
      Lp.Edit.Remove_row 0;
      Lp.Edit.Add_row
        { name = "r"; terms = [ (1.0, 0) ]; sense = Lp.Model.Ge; rhs = 0.0 };
    ]
  in
  Alcotest.(check (array int)) "col map" [| -1; 0 |] (Lp.Edit.col_map p edits);
  Alcotest.(check (array int)) "row map" [| -1; 0 |] (Lp.Edit.row_map p edits);
  (* surviving names travel with their indices *)
  let pe = Lp.Edit.apply p edits in
  Alcotest.(check string) "surviving col" "y" pe.Lp.Model.var_names.(0);
  Alcotest.(check string) "surviving row" "ycap" pe.Lp.Model.row_names.(0)

(* Single-edit warm re-solves must reproduce the cold objective to the
   bit — the canonical basis extraction in [Revised] makes warm and cold
   runs that terminate at the same (unique) optimal basis literally
   indistinguishable.  This is the unit-scale version of the editbench
   CI gate. *)
let test_edit_warm_bit_identical () =
  let p = edit_base_model () in
  let r0 = Lp.Revised.solve p in
  let b = Option.get r0.Lp.Revised.basis in
  List.iter
    (fun (what, edits) ->
      let pe, rw = Lp.Edit.resolve ~warm:b p edits in
      let rc = Lp.Revised.solve pe in
      Alcotest.(check bool) (what ^ ": both optimal") true
        (rw.Lp.Revised.status = Lp.Revised.Optimal
        && rc.Lp.Revised.status = Lp.Revised.Optimal);
      Alcotest.(check bool) (what ^ ": bit-identical objective") true
        (Int64.equal
           (Int64.bits_of_float rw.Lp.Revised.objective)
           (Int64.bits_of_float rc.Lp.Revised.objective)))
    [
      ("rhs", [ Lp.Edit.Set_rhs { row = 0; rhs = 4.5 } ]);
      ("bounds", [ Lp.Edit.Set_bounds { col = 0; lb = 0.0; ub = 3.0 } ]);
      ("entry", [ Lp.Edit.Set_entry { row = 0; col = 0; coef = 2.0 } ]);
      ( "added row",
        [
          Lp.Edit.Add_row
            {
              name = "cut";
              terms = [ (1.0, 0); (2.0, 1) ];
              sense = Lp.Model.Le;
              rhs = 6.0;
            };
        ] );
      ( "added col",
        [
          Lp.Edit.Add_col
            { name = "z"; lb = 0.0; ub = 1.0; obj = -3.0; terms = [ (1.0, 0) ] };
        ] );
      ("removed row", [ Lp.Edit.Remove_row 1 ]);
      ("removed col", [ Lp.Edit.Remove_col 0 ]);
    ]

(* The shrinking-friendly edit generator: edits are drawn as abstract
   specs (constructor choice + raw ints/floats) and interpreted against
   the evolving problem with index clamping, so ANY sublist of a failing
   spec list is still a valid edit sequence — QCheck's stock list
   shrinker applies directly, no custom invariant-preserving shrinker
   needed. *)
type edit_spec = { kind : int; ia : int; ib : int; fa : float; fb : float }

let gen_edit_spec rng =
  {
    kind = QCheck.Gen.int_bound 7 rng;
    ia = QCheck.Gen.int_bound 1000 rng;
    ib = QCheck.Gen.int_bound 1000 rng;
    fa = QCheck.Gen.float_range (-4.0) 4.0 rng;
    fb = QCheck.Gen.float_range (-4.0) 4.0 rng;
  }

let interp_spec (p : Lp.Model.problem) s : Lp.Edit.t option =
  let nv = p.Lp.Model.nv and nr = p.Lp.Model.nr in
  let col = if nv = 0 then None else Some (s.ia mod nv) in
  let row = if nr = 0 then None else Some (s.ib mod nr) in
  match s.kind with
  | 0 ->
      let terms = match col with None -> [] | Some j -> [ (s.fa, j) ] in
      let sense =
        match s.ia mod 3 with
        | 0 -> Lp.Model.Le
        | 1 -> Lp.Model.Ge
        | _ -> Lp.Model.Eq
      in
      Some (Lp.Edit.Add_row { name = "erow"; terms; sense; rhs = s.fb })
  | 1 -> Option.map (fun r -> Lp.Edit.Remove_row r) row
  | 2 ->
      let terms = match row with None -> [] | Some i -> [ (s.fb, i) ] in
      let ub =
        if s.ib land 1 = 0 then Float.infinity else Float.abs s.fb +. 1.0
      in
      Some (Lp.Edit.Add_col { name = "ecol"; lb = 0.0; ub; obj = s.fa; terms })
  | 3 -> if nv <= 1 then None else Option.map (fun j -> Lp.Edit.Remove_col j) col
  | 4 ->
      Option.map
        (fun j ->
          let lb = Float.min s.fa s.fb in
          let ub =
            if s.ia land 1 = 0 then Float.infinity else Float.max s.fa s.fb
          in
          Lp.Edit.Set_bounds { col = j; lb; ub })
        col
  | 5 -> Option.map (fun j -> Lp.Edit.Set_obj { col = j; obj = s.fa }) col
  | 6 -> (
      match (row, col) with
      | Some r, Some c -> Some (Lp.Edit.Set_entry { row = r; col = c; coef = s.fa })
      | _ -> None)
  | _ -> Option.map (fun r -> Lp.Edit.Set_rhs { row = r; rhs = s.fb }) row

let interp_specs p specs =
  let rec go p acc = function
    | [] -> List.rev acc
    | s :: tl -> (
        match interp_spec p s with
        | None -> go p acc tl
        | Some e -> go (Lp.Edit.apply p [ e ]) (e :: acc) tl)
  in
  go p [] specs

let edit_case_arbitrary =
  let print (p, specs) =
    Fmt.str "%d vars x %d rows; edits: [%a]" p.Lp.Model.nv p.Lp.Model.nr
      (Fmt.list ~sep:Fmt.semi Lp.Edit.pp)
      (interp_specs p specs)
  in
  QCheck.make ~print
    ~shrink:QCheck.Shrink.(pair nil (list ~shrink:nil))
    QCheck.Gen.(
      fun rng ->
        let p = random_feasible_model rng in
        let n = int_range 1 5 rng in
        (p, list_size (return n) gen_edit_spec rng))

(* The differential edit oracle: an incremental re-solve (basis mapped
   across the structural edits, dual-repaired) must agree with a cold
   solve of the edited problem on status — including edits that flip the
   problem infeasible or unbounded — and on the objective to 1e-9. *)
let prop_edit_oracle =
  QCheck.Test.make ~count:300
    ~name:"incremental edit re-solve matches cold (status + 1e-9)"
    edit_case_arbitrary
    (fun (p, specs) ->
      let edits = interp_specs p specs in
      let r0 = Lp.Revised.solve p in
      let pe, rw =
        match (r0.Lp.Revised.status, r0.Lp.Revised.basis) with
        | Lp.Revised.Optimal, Some b -> Lp.Edit.resolve ~warm:b p edits
        | _ -> Lp.Edit.resolve p edits
      in
      let rc = Lp.Revised.solve pe in
      if rc.Lp.Revised.status <> rw.Lp.Revised.status then
        QCheck.Test.fail_reportf "status mismatch: cold %a incremental %a"
          Lp.Revised.pp_status rc.Lp.Revised.status Lp.Revised.pp_status
          rw.Lp.Revised.status
      else
        match rc.Lp.Revised.status with
        | Lp.Revised.Optimal ->
            if
              Float.abs (rc.Lp.Revised.objective -. rw.Lp.Revised.objective)
              > 1e-9 *. (1.0 +. Float.abs rc.Lp.Revised.objective)
            then
              QCheck.Test.fail_reportf
                "objectives differ: cold %.12g incremental %.12g"
                rc.Lp.Revised.objective rw.Lp.Revised.objective
            else if not (Lp.Model.feasible ~tol:1e-6 pe rw.Lp.Revised.x) then
              QCheck.Test.fail_report "incremental solution infeasible"
            else true
        | _ -> true)

(* Index maps are consistent with apply: every surviving row/column
   keeps its name at its mapped index. *)
let prop_edit_maps_names =
  QCheck.Test.make ~count:200 ~name:"edit maps track surviving names"
    edit_case_arbitrary
    (fun (p, specs) ->
      let edits = interp_specs p specs in
      let pe = Lp.Edit.apply p edits in
      let cmap = Lp.Edit.col_map p edits in
      let rmap = Lp.Edit.row_map p edits in
      let ok = ref true in
      Array.iteri
        (fun j c ->
          if
            c >= 0
            && not
                 (String.equal p.Lp.Model.var_names.(j)
                    pe.Lp.Model.var_names.(c))
          then ok := false)
        cmap;
      Array.iteri
        (fun i r ->
          if
            r >= 0
            && not
                 (String.equal p.Lp.Model.row_names.(i)
                    pe.Lp.Model.row_names.(r))
          then ok := false)
        rmap;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dantzig–Wolfe decomposition                                        *)
(* ------------------------------------------------------------------ *)

let dw_env = [ ("POWERLIM_DW", "1", "1"); ("POWERLIM_DW_MIN_RANKS", "2", "512") ]

(* Random block-angular LP plus its block tagging: K blocks of boxed
   non-negative columns with a private blend row each (and sometimes a
   second private row), a few shared columns, and coupling rows over
   everything.  Some draws are deliberately infeasible (a coupling row
   no non-negative point can reach), unbounded (an uncapped
   negative-cost shared column) or degenerate (zero coupling RHS), so
   the oracle exercises every status the decomposition can meet. *)
let random_block_angular rng =
  let nb = 2 + QCheck.Gen.int_bound 4 rng in
  let mode = QCheck.Gen.int_bound 9 rng in
  (* 0 = infeasible twist, 1 = unbounded twist, 2 = degenerate rhs *)
  let m = Lp.Model.create () in
  let tags = ref [] in
  let add_var ~block ~lb ~ub ~obj name =
    tags := block :: !tags;
    Lp.Model.add_var m ~lb ~ub ~obj name
  in
  let nshared = QCheck.Gen.int_bound 2 rng + if mode = 1 then 1 else 0 in
  let shared =
    Array.init nshared (fun j ->
        let unbounded = mode = 1 && j = 0 in
        add_var ~block:(-1) ~lb:0.0
          ~ub:
            (if unbounded then Float.infinity
             else QCheck.Gen.float_range 1.0 5.0 rng)
          ~obj:
            (if unbounded then -1.0 -. QCheck.Gen.float_bound_inclusive 2.0 rng
             else QCheck.Gen.float_range (-2.0) 2.0 rng)
          (Printf.sprintf "s%d" j))
  in
  let blocks =
    Array.init nb (fun b ->
        let nk = 1 + QCheck.Gen.int_bound 3 rng in
        let cols =
          Array.init nk (fun j ->
              add_var ~block:b ~lb:0.0
                ~ub:
                  (if QCheck.Gen.bool rng then Float.infinity
                   else QCheck.Gen.float_range 0.5 4.0 rng)
                ~obj:(QCheck.Gen.float_range (-3.0) 3.0 rng)
                (Printf.sprintf "b%dx%d" b j))
        in
        let terms =
          Array.to_list
            (Array.map
               (fun v -> (QCheck.Gen.float_range 0.5 2.0 rng, v))
               cols)
        in
        let sense =
          match QCheck.Gen.int_bound 2 rng with
          | 0 -> Lp.Model.Le
          | 1 -> Lp.Model.Ge
          | _ -> Lp.Model.Eq
        in
        let rhs =
          if mode = 2 then 0.0 else QCheck.Gen.float_range 0.5 3.0 rng
        in
        Lp.Model.add_constr m terms sense rhs;
        if QCheck.Gen.bool rng then
          Lp.Model.add_constr m terms Lp.Model.Le
            (rhs +. QCheck.Gen.float_range 0.5 3.0 rng);
        cols)
  in
  let everything =
    Array.to_list shared @ List.concat_map Array.to_list (Array.to_list blocks)
  in
  let ncoup = 1 + QCheck.Gen.int_bound 2 rng in
  for c = 0 to ncoup - 1 do
    let terms =
      List.filter_map
        (fun v ->
          if QCheck.Gen.float_bound_inclusive 1.0 rng < 0.6 then
            Some (QCheck.Gen.float_range 0.2 2.0 rng, v)
          else None)
        everything
    in
    if terms <> [] then
      if mode = 0 && c = 0 then
        (* non-negative combination of non-negative columns below -1 *)
        Lp.Model.add_constr m terms Lp.Model.Le (-1.0)
      else
        Lp.Model.add_constr m terms Lp.Model.Le
          (2.0 +. QCheck.Gen.float_bound_inclusive 8.0 rng)
  done;
  let p = Lp.Model.compile m in
  let col_block = Array.of_list (List.rev !tags) in
  (p, Lp.Decomp.structure ~box:1e6 ~nblocks:nb col_block)

let prop_dw_differential =
  QCheck.Test.make ~count:200 ~name:"decomposition matches monolithic"
    QCheck.(make random_block_angular)
    (fun (p, structure) ->
      with_env dw_env (fun () ->
          if not (Lp.Decomp.engaged structure p) then
            QCheck.Test.fail_report "decomposition did not engage";
          let rd = Lp.Decomp.solve ~structure p in
          let rm = Lp.Revised.solve p in
          match (rd.Lp.Revised.status, rm.Lp.Revised.status) with
          | Lp.Revised.Optimal, Lp.Revised.Optimal ->
              if not (Lp.Model.feasible ~tol:1e-6 p rd.Lp.Revised.x) then
                QCheck.Test.fail_report "decomposed solution infeasible"
              else if
                Float.abs (rd.Lp.Revised.objective -. rm.Lp.Revised.objective)
                > 1e-9 *. (1.0 +. Float.abs rm.Lp.Revised.objective)
              then
                QCheck.Test.fail_reportf
                  "objectives differ: decomposed %.17g monolithic %.17g"
                  rd.Lp.Revised.objective rm.Lp.Revised.objective
              else true
          | sd, sm when sd = sm -> true
          | sd, sm ->
              QCheck.Test.fail_reportf "status mismatch: decomposed %s monolithic %s"
                (Fmt.str "%a" Lp.Revised.pp_status sd)
                (Fmt.str "%a" Lp.Revised.pp_status sm)))

(* The decomposition never engages on warm or bound-overridden calls,
   off-switch, or sub-threshold block counts: the result record must be
   indistinguishable from a direct Revised.solve. *)
let test_dw_disengaged () =
  let (p, structure) =
    random_block_angular (Random.State.make [| 42 |])
  in
  with_env [ ("POWERLIM_DW", "0", "1") ] (fun () ->
      Alcotest.(check bool) "off switch disengages" false
        (Lp.Decomp.engaged structure p));
  with_env
    [ ("POWERLIM_DW", "1", "1"); ("POWERLIM_DW_MIN_RANKS", "64", "512") ]
    (fun () ->
      Alcotest.(check bool) "threshold disengages" false
        (Lp.Decomp.engaged structure p);
      let rd = Lp.Decomp.solve ~structure p in
      let rm = Lp.Revised.solve p in
      Alcotest.(check bool) "bitwise-identical x" true
        (Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           rd.Lp.Revised.x rm.Lp.Revised.x))

let suite =
  [
    ( "lp.sparse",
      [
        Alcotest.test_case "coo to csc" `Quick test_coo_to_csc;
        Alcotest.test_case "csc mult" `Quick test_csc_mult;
        Alcotest.test_case "explicit zero grows dims" `Quick
          test_coo_zero_grows_dims;
      ] );
    ( "lp.lu",
      [
        Alcotest.test_case "roundtrip small" `Quick test_lu_small;
        Alcotest.test_case "roundtrip medium" `Quick test_lu_medium;
        Alcotest.test_case "roundtrip dense" `Quick test_lu_dense;
        Alcotest.test_case "identity" `Quick test_lu_identity;
        Alcotest.test_case "exact cancellation" `Quick test_lu_exact_cancellation;
        Alcotest.test_case "permutation" `Quick test_lu_permutation;
        Alcotest.test_case "singular replaced" `Quick test_lu_singular_replaced;
        Alcotest.test_case "sparse solves bitwise (hypersparse)" `Quick
          test_lu_sp_hypersparse;
        Alcotest.test_case "sparse solves bitwise (mixed)" `Quick
          test_lu_sp_mixed;
        Alcotest.test_case "sparse solves bitwise (dense fallback)" `Quick
          test_lu_sp_dense_fallback;
        Alcotest.test_case "symbolic factor bitwise" `Quick
          test_lu_factor_symbolic_identical;
        Alcotest.test_case "ft updates small" `Quick test_ft_small;
        Alcotest.test_case "ft updates medium" `Quick test_ft_medium;
        Alcotest.test_case "ft updates dense" `Quick test_ft_dense;
        Alcotest.test_case "ft updates long sequence" `Quick test_ft_many;
      ] );
    ( "lp.model",
      [ Alcotest.test_case "compile and feasible" `Quick test_model_compile ] );
    ( "lp.simplex",
      [
        Alcotest.test_case "dense basic" `Quick test_dense_basic;
        Alcotest.test_case "revised basic" `Quick test_revised_basic;
        Alcotest.test_case "dense eq/ge" `Quick test_dense_eq_ge;
        Alcotest.test_case "revised eq/ge" `Quick test_revised_eq_ge;
        Alcotest.test_case "infeasible" `Quick test_infeasible;
        Alcotest.test_case "unbounded" `Quick test_unbounded;
        Alcotest.test_case "free variable" `Quick test_free_variable;
        Alcotest.test_case "negative bounds" `Quick test_negative_bounds;
        Alcotest.test_case "degenerate" `Quick test_degenerate;
        Alcotest.test_case "beale cycling" `Quick test_beale_cycling_example;
        Alcotest.test_case "large chain" `Quick test_revised_chain_large;
        QCheck_alcotest.to_alcotest prop_differential;
        QCheck_alcotest.to_alcotest prop_differential_feasible;
        QCheck_alcotest.to_alcotest prop_differential_large;
        QCheck_alcotest.to_alcotest prop_duality;
        QCheck_alcotest.to_alcotest prop_env_differential;
        QCheck_alcotest.to_alcotest prop_ft_differential;
        Alcotest.test_case "eta limit sanity" `Quick test_eta_limit_sanity;
        Alcotest.test_case "refactor limit default pinned" `Quick
          test_refactor_limit_default;
        Alcotest.test_case "refactor limit answer-invariant" `Quick
          test_refactor_limit_answer_invariant;
      ] );
    ( "lp.mps",
      [
        Alcotest.test_case "roundtrip basic" `Quick test_mps_roundtrip_basic;
        Alcotest.test_case "integer markers" `Quick test_mps_integer_markers;
        Alcotest.test_case "fixed example" `Quick test_mps_parse_fixed_example;
        Alcotest.test_case "rejects garbage" `Quick test_mps_rejects_garbage;
        QCheck_alcotest.to_alcotest prop_mps_roundtrip;
      ] );
    ( "lp.presolve",
      [
        Alcotest.test_case "fixed vars" `Quick test_presolve_fixed_vars;
        Alcotest.test_case "singleton row" `Quick test_presolve_singleton_row;
        Alcotest.test_case "infeasible" `Quick test_presolve_detects_infeasible;
        Alcotest.test_case "doubleton chain" `Quick test_presolve_doubleton_chain;
        Alcotest.test_case "doubleton bounds" `Quick test_presolve_doubleton_bound_transfer;
        QCheck_alcotest.to_alcotest prop_presolve_equivalent;
        QCheck_alcotest.to_alcotest prop_scaling_roundtrip;
      ] );
    ( "lp.milp",
      [
        Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
        Alcotest.test_case "relaxation bound" `Quick test_milp_relaxation_bound;
        Alcotest.test_case "general integers" `Quick test_milp_integer_general;
        Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
        Alcotest.test_case "node limit with incumbent" `Quick
          test_milp_node_limit_with_incumbent;
        Alcotest.test_case "node budget boundary" `Quick
          test_milp_node_budget_boundary;
        Alcotest.test_case "root iteration limit" `Quick
          test_milp_root_iter_limit;
        Alcotest.test_case "child iteration limit" `Quick
          test_milp_child_iter_limit;
        QCheck_alcotest.to_alcotest prop_milp_vs_bruteforce;
        QCheck_alcotest.to_alcotest prop_milp_warm_equals_cold;
      ] );
    ( "lp.warm",
      [
        Alcotest.test_case "rhs re-solve" `Quick test_warm_rhs_resolve;
        QCheck_alcotest.to_alcotest prop_warm_resolve;
      ] );
    ( "lp.decomp",
      [
        QCheck_alcotest.to_alcotest prop_dw_differential;
        Alcotest.test_case "disengaged paths identical" `Quick
          test_dw_disengaged;
      ] );
    ( "lp.edit",
      [
        Alcotest.test_case "apply shapes and objectives" `Quick
          test_edit_apply_shapes;
        Alcotest.test_case "validation" `Quick test_edit_validation;
        Alcotest.test_case "index maps" `Quick test_edit_maps;
        Alcotest.test_case "warm bit-identical to cold" `Quick
          test_edit_warm_bit_identical;
        QCheck_alcotest.to_alcotest prop_edit_oracle;
        QCheck_alcotest.to_alcotest prop_edit_maps_names;
      ] );
  ]
