(* Tests for the paper's formulations: the fixed-vertex-order event LP,
   schedule replay/validation, and the flow ILP.  These encode the
   central soundness properties: the LP is a realizable lower bound on
   time, replay never violates the power cap, and the two formulations
   agree on small instances (paper Figure 8). *)

let comd_sc () =
  let g =
    Workloads.Apps.comd
      { Workloads.Apps.default_params with nranks = 4; iterations = 3 }
  in
  Core.Scenario.make g

let lp_schedule ?mode sc ~cap =
  match Core.Event_lp.solve ?mode sc ~power_cap:cap with
  | Core.Event_lp.Schedule s -> s
  | Core.Event_lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Core.Event_lp.Solver_failure m -> Alcotest.failf "solver failure: %s" m

let test_scenario_frontiers () =
  let sc = comd_sc () in
  Array.iteri
    (fun tid f ->
      let t = sc.Core.Scenario.graph.Dag.Graph.tasks.(tid) in
      if t.profile.Machine.Profile.work > 0.0 then
        Alcotest.(check bool) "nonempty frontier" true (Array.length f >= 2)
      else Alcotest.(check int) "zero task no frontier" 0 (Array.length f))
    sc.Core.Scenario.frontiers;
  let mn = Core.Scenario.min_job_power sc in
  Alcotest.(check bool) "min power sane" true (mn > 50.0 && mn < 150.0)

let test_lp_infeasible_below_min () =
  let sc = comd_sc () in
  let mn = Core.Scenario.min_job_power sc in
  match Core.Event_lp.solve sc ~power_cap:(0.8 *. mn) with
  | Core.Event_lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible below minimum power"

let test_lp_monotone_in_cap () =
  let sc = comd_sc () in
  let o cap = (lp_schedule sc ~cap).Core.Event_lp.objective in
  let t1 = o 110.0 and t2 = o 140.0 and t3 = o 200.0 and t4 = o 400.0 in
  Alcotest.(check bool) "more power never slower" true
    (t1 >= t2 -. 1e-6 && t2 >= t3 -. 1e-6 && t3 >= t4 -. 1e-6);
  (* at a huge cap the LP reaches the unconstrained schedule *)
  let unconstrained = Core.Event_lp.initial_times sc in
  Alcotest.(check bool) "uncapped = unconstrained" true
    (Float.abs (t4 -. unconstrained.Dag.Schedule.makespan) < 1e-4)

let test_lp_bound_ordering () =
  (* LP objective <= continuous replay <= Static makespan: the chain that
     makes the LP an upper bound on achievable performance *)
  List.iter
    (fun app ->
      let g =
        Workloads.Apps.generate app
          { Workloads.Apps.default_params with nranks = 4; iterations = 3 }
      in
      let sc = Core.Scenario.make g in
      let cap = 35.0 *. 4.0 in
      let s = lp_schedule sc ~cap in
      let v = Core.Replay.validate sc s ~power_cap:cap in
      let static = Runtime.Static.run sc ~job_cap:cap in
      Alcotest.(check bool)
        (Workloads.Apps.app_name app ^ ": lp <= replay")
        true
        (s.Core.Event_lp.objective <= v.Core.Replay.replay_makespan +. 1e-6);
      Alcotest.(check bool)
        (Workloads.Apps.app_name app ^ ": replay <= static")
        true
        (v.Core.Replay.replay_makespan
        <= static.Simulate.Engine.makespan +. 1e-6))
    Workloads.Apps.all_apps

let test_replay_respects_cap () =
  List.iter
    (fun app ->
      let g =
        Workloads.Apps.generate app
          { Workloads.Apps.default_params with nranks = 4; iterations = 3 }
      in
      let sc = Core.Scenario.make g in
      List.iter
        (fun cap_per ->
          let cap = cap_per *. 4.0 in
          match Core.Event_lp.solve sc ~power_cap:cap with
          | Core.Event_lp.Schedule s ->
              let v = Core.Replay.validate sc s ~power_cap:cap in
              if not v.Core.Replay.within_cap then
                Alcotest.failf "%s at %gW: replay power %.1f over cap %.1f"
                  (Workloads.Apps.app_name app)
                  cap_per v.Core.Replay.max_power cap
          | Core.Event_lp.Infeasible -> ()
          | Core.Event_lp.Solver_failure m -> Alcotest.failf "failure: %s" m)
        [ 30.0; 45.0; 65.0 ])
    Workloads.Apps.all_apps

let test_replay_gap_small_continuous () =
  let sc = comd_sc () in
  let s = lp_schedule sc ~cap:140.0 in
  let v = Core.Replay.validate sc s ~power_cap:140.0 in
  Alcotest.(check bool) "continuous replay within 1% of LP" true
    (Float.abs v.Core.Replay.gap_pct < 1.0)

let test_discrete_mode () =
  let sc = comd_sc () in
  let s = lp_schedule ~mode:Core.Event_lp.Discrete_rounded sc ~cap:140.0 in
  (* every blend is a single real configuration *)
  Array.iter
    (fun blend ->
      match blend with
      | [] | [ _ ] -> ()
      | _ -> Alcotest.fail "discrete blend has several points")
    s.Core.Event_lp.blends;
  (* discrete can be slightly worse but must stay close to continuous *)
  let cont = lp_schedule sc ~cap:140.0 in
  let vd = Core.Replay.validate sc s ~power_cap:140.0 in
  Alcotest.(check bool) "discrete replay within 10% of continuous LP" true
    (vd.Core.Replay.replay_makespan
    <= cont.Core.Event_lp.objective *. 1.10)

let test_blends_sum_to_one () =
  let sc = comd_sc () in
  let s = lp_schedule sc ~cap:120.0 in
  Array.iteri
    (fun tid blend ->
      if Array.length sc.Core.Scenario.frontiers.(tid) > 0 then begin
        let w = List.fold_left (fun a (_, x) -> a +. x) 0.0 blend in
        Alcotest.(check (float 1e-6)) "weights sum to 1" 1.0 w;
        (* blends lie on adjacent hull points in the typical case *)
        Alcotest.(check bool) "blend support small" true (List.length blend <= 3)
      end)
    s.Core.Event_lp.blends

let test_lp_power_rows_deduped () =
  let sc = comd_sc () in
  let s = lp_schedule sc ~cap:140.0 in
  (* comd: one distinct active set per iteration (plus none at the end) *)
  Alcotest.(check bool) "power rows bounded" true
    (s.Core.Event_lp.stats.Core.Event_lp.power_rows <= 6)



let test_to_mps_roundtrip () =
  (* the exported LP parses back and has the same optimum the internal
     solve reports *)
  let sc = comd_sc () in
  let cap = 130.0 in
  let mps = Core.Event_lp.to_mps sc ~power_cap:cap in
  let p = Lp.Mps.of_string mps in
  let r = Lp.Revised.solve p in
  let s = lp_schedule sc ~cap in
  Alcotest.(check bool) "optimal" true (r.Lp.Revised.status = Lp.Revised.Optimal);
  Alcotest.(check (float 1e-5)) "same optimum" s.Core.Event_lp.objective
    r.Lp.Revised.objective

let test_power_duals_sensitivity () =
  (* shadow prices: d(makespan)/d(cap) = -sum of power duals, checked by
     finite difference at a binding cap *)
  let sc = comd_sc () in
  let cap = 120.0 in
  let s0 = lp_schedule sc ~cap in
  let total_dual =
    Array.fold_left (fun acc (_, d) -> acc +. d) 0.0 s0.Core.Event_lp.power_duals
  in
  Alcotest.(check bool) "binding at 30W/socket" true (total_dual > 1e-6);
  let dw = 0.05 in
  let s1 = lp_schedule sc ~cap:(cap +. dw) in
  let predicted = s0.Core.Event_lp.objective -. (dw *. total_dual) in
  let actual = s1.Core.Event_lp.objective in
  if Float.abs (predicted -. actual) > 1e-3 *. s0.Core.Event_lp.objective then
    Alcotest.failf "dual prediction %.6f vs actual %.6f (base %.6f)" predicted
      actual s0.Core.Event_lp.objective

let test_power_duals_vanish_uncapped () =
  let sc = comd_sc () in
  let s = lp_schedule sc ~cap:2000.0 in
  Array.iter
    (fun (_, d) ->
      Alcotest.(check bool) "no binding power events" true (Float.abs d < 1e-9))
    s.Core.Event_lp.power_duals


let test_solve_refined_sound () =
  (* refinement never worsens the bound and stays realizable *)
  let g =
    Workloads.Apps.lulesh
      { Workloads.Apps.default_params with nranks = 4; iterations = 3 }
  in
  let sc = Core.Scenario.make g in
  let cap = 35.0 *. 4.0 in
  match
    (Core.Event_lp.solve sc ~power_cap:cap,
     Core.Event_lp.solve_refined ~rounds:3 sc ~power_cap:cap)
  with
  | Core.Event_lp.Schedule base, Core.Event_lp.Schedule refined ->
      Alcotest.(check bool) "refined <= base" true
        (refined.Core.Event_lp.objective
        <= base.Core.Event_lp.objective +. 1e-9);
      let v = Core.Replay.validate sc refined ~power_cap:cap in
      Alcotest.(check bool) "refined replay within cap" true
        v.Core.Replay.within_cap;
      Alcotest.(check bool) "refined replay near bound" true
        (Float.abs v.Core.Replay.gap_pct < 1.0)
  | _ -> Alcotest.fail "both solves should succeed"

let test_solve_refined_flag_plumbing () =
  (* reduce_slack/presolve must reach the inner rounds, not just round 0:
     with both off, refinement still never worsens the equally-configured
     direct solve and stays realizable *)
  let sc = comd_sc () in
  let cap = 140.0 in
  match
    ( Core.Event_lp.solve ~reduce_slack:false ~presolve:false sc
        ~power_cap:cap,
      Core.Event_lp.solve_refined ~rounds:3 ~reduce_slack:false
        ~presolve:false sc ~power_cap:cap )
  with
  | Core.Event_lp.Schedule base, Core.Event_lp.Schedule refined ->
      Alcotest.(check bool) "refined <= base" true
        (refined.Core.Event_lp.objective
        <= base.Core.Event_lp.objective +. 1e-9);
      let v = Core.Replay.validate sc refined ~power_cap:cap in
      Alcotest.(check bool) "refined replay within cap" true
        v.Core.Replay.within_cap
  | _ -> Alcotest.fail "both solves should succeed"

(* ------------------------------------------------------------------ *)
(* Flow ILP                                                            *)
(* ------------------------------------------------------------------ *)

let test_flow_too_large () =
  let sc = comd_sc () in
  match Core.Flow_ilp.solve ~max_tasks:5 sc ~power_cap:140.0 with
  | Core.Flow_ilp.Too_large n -> Alcotest.(check bool) "size reported" true (n > 5)
  | _ -> Alcotest.fail "expected Too_large"

let exchange_sc () = Core.Scenario.make (Workloads.Apps.exchange ())

let test_flow_close_to_fixed_order () =
  (* paper Figure 8: the two formulations agree within ~2% *)
  let sc = exchange_sc () in
  List.iter
    (fun cap ->
      let fixed = lp_schedule sc ~cap in
      match Core.Flow_ilp.solve sc ~power_cap:cap with
      | Core.Flow_ilp.Schedule flow ->
          let rel =
            Float.abs
              (flow.Core.Flow_ilp.objective -. fixed.Core.Event_lp.objective)
            /. fixed.Core.Event_lp.objective
          in
          if rel > 0.05 then
            Alcotest.failf "cap %g: flow %.4f vs fixed %.4f (%.1f%%)" cap
              flow.Core.Flow_ilp.objective fixed.Core.Event_lp.objective
              (100.0 *. rel);
          (* the solver-chosen order can only help *)
          Alcotest.(check bool) "flow <= fixed + tol" true
            (flow.Core.Flow_ilp.objective
            <= fixed.Core.Event_lp.objective +. 0.02 *. fixed.Core.Event_lp.objective)
      | Core.Flow_ilp.Infeasible -> Alcotest.failf "flow infeasible at %g" cap
      | Core.Flow_ilp.Too_large n -> Alcotest.failf "too large: %d" n
      | Core.Flow_ilp.Solver_failure m -> Alcotest.failf "flow failure: %s" m)
    [ 45.0; 60.0; 90.0 ]


let test_flow_integer_configs () =
  (* discrete configurations can only be worse than continuous blends *)
  let sc = exchange_sc () in
  let cap = 55.0 in
  match
    ( Core.Flow_ilp.solve sc ~power_cap:cap,
      Core.Flow_ilp.solve ~integer_configs:true sc ~power_cap:cap )
  with
  | Core.Flow_ilp.Schedule cont, Core.Flow_ilp.Schedule disc ->
      Alcotest.(check bool) "discrete >= continuous" true
        (disc.Core.Flow_ilp.objective >= cont.Core.Flow_ilp.objective -. 1e-6);
      (* every blend is one configuration *)
      Array.iter
        (fun blend ->
          match blend with
          | [] | [ _ ] -> ()
          | _ -> Alcotest.fail "integer configs produced a blend")
        disc.Core.Flow_ilp.blends;
      (* but not catastrophically worse on this dense frontier *)
      Alcotest.(check bool) "discrete within 15%" true
        (disc.Core.Flow_ilp.objective
        <= cont.Core.Flow_ilp.objective *. 1.15)
  | _ -> Alcotest.fail "both solves should succeed"

let test_flow_monotone () =
  let sc = exchange_sc () in
  let o cap =
    match Core.Flow_ilp.solve sc ~power_cap:cap with
    | Core.Flow_ilp.Schedule s -> s.Core.Flow_ilp.objective
    | _ -> Alcotest.failf "no flow schedule at %g" cap
  in
  let t1 = o 50.0 and t2 = o 70.0 and t3 = o 120.0 in
  Alcotest.(check bool) "monotone in cap" true
    (t1 >= t2 -. 1e-6 && t2 >= t3 -. 1e-6)


(* ------------------------------------------------------------------ *)
(* Properties on random synthetic applications                         *)
(* ------------------------------------------------------------------ *)

let prop_lp_bound_on_synthetic =
  QCheck.Test.make ~count:25 ~name:"lp bound and cap hold on synthetic apps"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, nranks) ->
      let g = Workloads.Apps.synthetic ~seed ~nranks ~steps:4 in
      let sc = Core.Scenario.make g in
      let cap = 40.0 *. Float.of_int nranks in
      match Core.Event_lp.solve sc ~power_cap:cap with
      | Core.Event_lp.Infeasible -> true
      | Core.Event_lp.Solver_failure m ->
          QCheck.Test.fail_reportf "solver failure: %s" m
      | Core.Event_lp.Schedule s ->
          let v = Core.Replay.validate sc s ~power_cap:cap in
          let static = Runtime.Static.run sc ~job_cap:cap in
          if not v.Core.Replay.within_cap then
            QCheck.Test.fail_reportf "cap violated: %.1f > %.1f"
              v.Core.Replay.max_power cap
          else if
            s.Core.Event_lp.objective
            > static.Simulate.Engine.makespan +. 1e-6
          then
            QCheck.Test.fail_reportf "bound above static: %.4f > %.4f"
              s.Core.Event_lp.objective static.Simulate.Engine.makespan
          else if
            Float.abs v.Core.Replay.gap_pct > 2.0
          then QCheck.Test.fail_reportf "replay gap %.2f%%" v.Core.Replay.gap_pct
          else true)

let suite =
  [
    ( "core.scenario",
      [ Alcotest.test_case "frontiers" `Quick test_scenario_frontiers ] );
    ( "core.event_lp",
      [
        Alcotest.test_case "infeasible below min" `Quick test_lp_infeasible_below_min;
        Alcotest.test_case "monotone in cap" `Quick test_lp_monotone_in_cap;
        Alcotest.test_case "bound ordering" `Quick test_lp_bound_ordering;
        Alcotest.test_case "replay respects cap" `Quick test_replay_respects_cap;
        Alcotest.test_case "continuous replay gap" `Quick test_replay_gap_small_continuous;
        Alcotest.test_case "discrete mode" `Quick test_discrete_mode;
        Alcotest.test_case "blends sum to one" `Quick test_blends_sum_to_one;
        Alcotest.test_case "power rows deduped" `Quick test_lp_power_rows_deduped;
        Alcotest.test_case "dual sensitivity" `Quick test_power_duals_sensitivity;
        Alcotest.test_case "duals vanish uncapped" `Quick test_power_duals_vanish_uncapped;
        Alcotest.test_case "mps export" `Quick test_to_mps_roundtrip;
        Alcotest.test_case "refined sound" `Quick test_solve_refined_sound;
        Alcotest.test_case "refined flag plumbing" `Quick
          test_solve_refined_flag_plumbing;
      ] );
    ( "core.flow_ilp",
      [
        Alcotest.test_case "too large" `Quick test_flow_too_large;
        Alcotest.test_case "close to fixed order" `Quick test_flow_close_to_fixed_order;
        Alcotest.test_case "monotone" `Quick test_flow_monotone;
        Alcotest.test_case "integer configs" `Quick test_flow_integer_configs;
      ] );
    ( "core.properties",
      [ QCheck_alcotest.to_alcotest prop_lp_bound_on_synthetic ] );
  ]
