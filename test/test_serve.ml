(* Tests for the solving daemon: the JSON codec, the wire protocol
   (request parsing, content-addressed request keys), and an in-process
   daemon exercised over a real Unix socket — served bytes must equal
   what the CLI handlers produce, repeats must hit the memory tier, a
   restart over the same store root must hit the disk tier, and
   malformed requests must be refused under the sender's id. *)

let json = Alcotest.testable (fun ppf j ->
    Format.pp_print_string ppf (Serve.Json.to_string j))
    ( = )

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let check s v =
    Alcotest.check json (Printf.sprintf "parse %s" s) v (Serve.Json.of_string s)
  in
  check "null" Putil.Obs.Null;
  check "true" (Putil.Obs.Bool true);
  check "-42" (Putil.Obs.Int (-42));
  check "1.5" (Putil.Obs.Float 1.5);
  check "1e3" (Putil.Obs.Float 1000.0);
  check "\"a b\"" (Putil.Obs.String "a b");
  check "[1, 2, 3]" (Putil.Obs.List [ Putil.Obs.Int 1; Putil.Obs.Int 2; Putil.Obs.Int 3 ]);
  check "{\"k\": [true, null]}"
    (Putil.Obs.Assoc [ ("k", Putil.Obs.List [ Putil.Obs.Bool true; Putil.Obs.Null ]) ]);
  check "\"\\u0041\\n\\t\\\"\\\\\"" (Putil.Obs.String "A\n\t\"\\")

let test_json_emit_parse_identity () =
  (* every value the daemon emits parses back to itself, including
     strings carrying the full byte range (the emitter escapes bytes
     >= 0x80 as \u00XX; the parser folds those back to single bytes) *)
  let hostile = String.init 256 Char.chr in
  let v =
    Putil.Obs.Assoc
      [
        ("id", Putil.Obs.Int 3);
        ("output", Putil.Obs.String hostile);
        ("xs", Putil.Obs.List [ Putil.Obs.Float 0.1; Putil.Obs.Int 0 ]);
        ("ok", Putil.Obs.Bool false);
        ("nothing", Putil.Obs.Null);
      ]
  in
  Alcotest.check json "emit-parse identity" v
    (Serve.Json.of_string (Serve.Json.to_string v))

let test_json_hostile_inputs_raise () =
  List.iter
    (fun s ->
      match Serve.Json.of_string s with
      | v ->
          Alcotest.failf "%S parsed to %s" s (Serve.Json.to_string v)
      | exception Serve.Json.Error _ -> ())
    [
      ""; "{"; "}"; "[1,"; "[1 2]"; "{\"a\":}"; "{\"a\" 1}"; "{'a':1}";
      "\"unterminated"; "\"bad \\x escape\""; "tru"; "01x"; "1.2.3";
      "{\"a\":1} trailing"; "\"\\u12\"";
    ]

let test_json_accessors () =
  let j = Serve.Json.of_string "{\"n\":3,\"f\":2.5,\"s\":\"x\",\"l\":[1,2]}" in
  Alcotest.(check (option int)) "int" (Some 3) (Serve.Json.get_int "n" j);
  Alcotest.(check (option (float 0.0))) "float" (Some 2.5)
    (Serve.Json.get_float "f" j);
  Alcotest.(check (option (float 0.0))) "int widens to float" (Some 3.0)
    (Serve.Json.get_float "n" j);
  Alcotest.(check (option string)) "string" (Some "x")
    (Serve.Json.get_string "s" j);
  Alcotest.(check (list int)) "int list" [ 1; 2 ]
    (Serve.Json.get_int_list "l" j);
  Alcotest.(check (option int)) "absent is None" None
    (Serve.Json.get_int "missing" j);
  Alcotest.(check (list int)) "absent list is empty" []
    (Serve.Json.get_int_list "missing" j);
  (match Serve.Json.get_int "s" j with
  | _ -> Alcotest.fail "wrong type must raise"
  | exception Serve.Json.Error _ -> ())

(* ------------------------------------------------------------------ *)
(* protocol: request parsing and keys                                  *)
(* ------------------------------------------------------------------ *)

let parse s = Serve.Protocol.request_of_string s

let test_protocol_parse_defaults () =
  let r = parse "{\"id\":7,\"op\":\"sweep\"}" in
  Alcotest.(check int) "id" 7 r.Serve.Protocol.id;
  (match r.Serve.Protocol.op with
  | Serve.Protocol.Sweep { ranks; iters; seed } ->
      Alcotest.(check (list int)) "CLI defaults" [ 16; 10; 42 ]
        [ ranks; iters; seed ]
  | _ -> Alcotest.fail "expected Sweep");
  match (parse "{\"id\":0,\"op\":\"energy\",\"cap\":55.5}").Serve.Protocol.op with
  | Serve.Protocol.Energy { app; cap; deadline; _ } ->
      Alcotest.(check bool) "default app" true (app = Workloads.Apps.CoMD);
      Alcotest.(check (float 0.0)) "cap" 55.5 cap;
      Alcotest.(check bool) "no deadline" true (deadline = None)
  | _ -> Alcotest.fail "expected Energy"

let test_protocol_parse_what_if_edits () =
  let r =
    parse
      "{\"id\":1,\"op\":\"what-if\",\"app\":\"bt\",\"fail_sockets\":[2],\
       \"drop_ranks\":[0,3],\"perturb_tasks\":[{\"tid\":17,\"point\":2,\
       \"duration\":0.5,\"power\":91.5}]}"
  in
  match r.Serve.Protocol.op with
  | Serve.Protocol.What_if { app; edits; _ } ->
      Alcotest.(check bool) "app" true (app = Workloads.Apps.BT);
      Alcotest.(check int) "all edits collected" 4 (List.length edits);
      Alcotest.(check bool) "perturb parsed" true
        (List.exists
           (function
             | Core.Event_lp.Perturb_task { tid = 17; point = 2; _ } -> true
             | _ -> false)
           edits)
  | _ -> Alcotest.fail "expected What_if"

let test_protocol_rejects () =
  let rejects s =
    match parse s with
    | _ -> Alcotest.failf "%S must be rejected" s
    | exception Serve.Json.Error _ -> ()
  in
  rejects "{\"op\":\"sweep\"}" (* no id *);
  rejects "{\"id\":1}" (* no op *);
  rejects "{\"id\":1,\"op\":\"swep\"}";
  rejects "{\"id\":1,\"op\":\"energy\",\"app\":\"nosuchapp\"}";
  rejects "{\"id\":1,\"op\":\"what-if\",\"perturb_tasks\":[{\"tid\":1}]}";
  rejects "not json at all"

let test_request_keys () =
  let key s =
    match Serve.Protocol.request_key (parse s).Serve.Protocol.op with
    | Some k -> k
    | None -> Alcotest.fail "expected a key"
  in
  (* equal requests derive equal keys, independent of field order and
     of which defaults are spelled out *)
  Alcotest.(check string) "key ignores field order"
    (key "{\"id\":1,\"op\":\"sweep\",\"ranks\":16}")
    (key "{\"ranks\":16,\"op\":\"sweep\",\"id\":99}");
  Alcotest.(check string) "defaults spelled out or omitted"
    (key "{\"id\":1,\"op\":\"sweep\"}")
    (key "{\"id\":1,\"op\":\"sweep\",\"ranks\":16,\"iters\":10,\"seed\":42}");
  (* every parameter is key-relevant *)
  let base = key "{\"id\":1,\"op\":\"energy\"}" in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s re-keys" s)
        false
        (String.equal base (key s)))
    [
      "{\"id\":1,\"op\":\"energy\",\"ranks\":17}";
      "{\"id\":1,\"op\":\"energy\",\"cap\":41}";
      "{\"id\":1,\"op\":\"energy\",\"deadline\":1.5}";
      "{\"id\":1,\"op\":\"energy\",\"app\":\"sp\"}";
      "{\"id\":1,\"op\":\"sweep\"}";
    ];
  (* stats and shutdown are not cacheable *)
  Alcotest.(check bool) "stats has no key" true
    (Serve.Protocol.request_key Serve.Protocol.Stats = None);
  Alcotest.(check bool) "shutdown has no key" true
    (Serve.Protocol.request_key Serve.Protocol.Shutdown = None)

(* ------------------------------------------------------------------ *)
(* daemon round-trip over a real socket                                *)
(* ------------------------------------------------------------------ *)

let mkdtemp () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "powerlim-serve-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_cache_enabled f =
  let was = Putil.Cache.enabled () in
  Putil.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Putil.Cache.set_enabled was;
      Putil.Cache.clear_all ())
    f

(* Start a daemon on a fresh Unix socket under [dir], run [f client],
   shut the daemon down and join it. *)
let with_daemon ?store_root dir f =
  let cfg =
    {
      (Serve.Daemon.default_config
         (Serve.Daemon.Unix_socket (Filename.concat dir "sock")))
      with
      Serve.Daemon.store_root;
    }
  in
  let d = Serve.Daemon.start cfg in
  let c = Serve.Client.connect_retry (Serve.Daemon.address d) in
  Fun.protect
    ~finally:(fun () ->
      (let c2 = Serve.Client.connect_retry (Serve.Daemon.address d) in
       ignore
         (Serve.Client.request c2
            (Serve.Json.of_string "{\"op\":\"shutdown\"}"));
       Serve.Client.close c2);
      Serve.Client.close c;
      Serve.Daemon.wait d)
    (fun () -> f c)

let get_exn name resp =
  match Serve.Json.member name resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

let str_exn name resp =
  match get_exn name resp with
  | Putil.Obs.String s -> s
  | _ -> Alcotest.failf "%S is not a string" name

let test_daemon_byte_identity_and_tiers () =
  with_cache_enabled (fun () ->
      let dir = mkdtemp () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let store = Filename.concat dir "store" in
          let req =
            "{\"op\":\"energy\",\"ranks\":4,\"iters\":2,\"cap\":40,\
             \"deadline\":10.0}"
          in
          let offline =
            Serve.Handlers.energy ~app:Workloads.Apps.CoMD ~ranks:4 ~iters:2
              ~seed:42 ~cap:40.0 ~deadline:(Some 10.0) ()
          in
          (* daemon 1: cold compute, then a memory hit, byte-identical *)
          with_daemon ~store_root:store dir (fun c ->
              let r1 = Serve.Client.request c (Serve.Json.of_string req) in
              Alcotest.(check bool) "ok" true
                (get_exn "ok" r1 = Putil.Obs.Bool true);
              Alcotest.(check string) "cold response is computed" "none"
                (str_exn "cached" r1);
              Alcotest.(check string) "served stdout = CLI stdout"
                offline.Serve.Handlers.out (str_exn "output" r1);
              Alcotest.(check string) "served stderr = CLI stderr"
                offline.Serve.Handlers.err (str_exn "err" r1);
              Alcotest.(check bool) "status echoed" true
                (get_exn "status" r1
                = Putil.Obs.Int offline.Serve.Handlers.status);
              let r2 = Serve.Client.request c (Serve.Json.of_string req) in
              Alcotest.(check string) "repeat hits memory" "mem"
                (str_exn "cached" r2);
              Alcotest.(check string) "memory tier returns equal bytes"
                (str_exn "output" r1) (str_exn "output" r2));
          (* daemon 2, same store root, cold caches: the disk tier must
             revive the response computed by daemon 1 *)
          Putil.Cache.clear_all ();
          with_daemon ~store_root:store dir (fun c ->
              let r3 = Serve.Client.request c (Serve.Json.of_string req) in
              Alcotest.(check string) "restart hits the disk tier" "disk"
                (str_exn "cached" r3);
              Alcotest.(check string) "disk tier returns equal bytes"
                offline.Serve.Handlers.out (str_exn "output" r3))))

let test_daemon_refuses_malformed_under_client_id () =
  with_cache_enabled (fun () ->
      let dir = mkdtemp () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          with_daemon dir (fun c ->
              (* unknown op: refused, under the id the client sent *)
              let r =
                Serve.Client.request c
                  (Serve.Json.of_string "{\"id\":123,\"op\":\"swep\"}")
              in
              Alcotest.(check bool) "not ok" true
                (get_exn "ok" r = Putil.Obs.Bool false);
              Alcotest.(check bool) "id echoed" true
                (get_exn "id" r = Putil.Obs.Int 123);
              Alcotest.(check bool) "error names the op" true
                (let e = str_exn "error" r in
                 let sub = "swep" in
                 let n = String.length e and m = String.length sub in
                 let rec scan i =
                   i + m <= n && (String.sub e i m = sub || scan (i + 1))
                 in
                 scan 0);
              (* non-JSON line: refused with id -1, connection stays up *)
              Serve.Client.send_line c "this is not json";
              (match Serve.Client.recv c with
              | Some r ->
                  Alcotest.(check bool) "refused" true
                    (get_exn "ok" r = Putil.Obs.Bool false)
              | None -> Alcotest.fail "connection dropped");
              (* the same connection still serves valid requests *)
              let r =
                Serve.Client.request c
                  (Serve.Json.of_string "{\"op\":\"stats\"}")
              in
              Alcotest.(check bool) "stats still served" true
                (get_exn "ok" r = Putil.Obs.Bool true);
              match get_exn "stats" r with
              | Putil.Obs.Assoc kvs ->
                  Alcotest.(check bool) "stats counts the errors" true
                    (match List.assoc_opt "errors" kvs with
                    | Some (Putil.Obs.Int n) -> n >= 2
                    | _ -> false)
              | _ -> Alcotest.fail "stats payload is not an object")))

let suite =
  [
    ( "serve.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "emit-parse identity" `Quick
          test_json_emit_parse_identity;
        Alcotest.test_case "hostile inputs raise" `Quick
          test_json_hostile_inputs_raise;
        Alcotest.test_case "typed accessors" `Quick test_json_accessors;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "defaults mirror the CLI" `Quick
          test_protocol_parse_defaults;
        Alcotest.test_case "what-if edits" `Quick
          test_protocol_parse_what_if_edits;
        Alcotest.test_case "malformed requests rejected" `Quick
          test_protocol_rejects;
        Alcotest.test_case "request keys are content-addressed" `Quick
          test_request_keys;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "byte identity across mem/disk tiers" `Slow
          test_daemon_byte_identity_and_tiers;
        Alcotest.test_case "malformed requests refused under client id"
          `Quick test_daemon_refuses_malformed_under_client_id;
      ] );
  ]
