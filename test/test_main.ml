let () =
  Alcotest.run "powerlim"
    (Test_lp.suite @ Test_machine.suite @ Test_pareto.suite @ Test_dag.suite
   @ Test_simulate.suite @ Test_workloads.suite @ Test_core.suite
   @ Test_objective.suite @ Test_runtime.suite @ Test_trace_io.suite @ Test_experiments.suite
   @ Test_pqueue.suite @ Test_parallel.suite @ Test_cache.suite
   @ Test_obs.suite @ Test_store.suite @ Test_serve.suite)
