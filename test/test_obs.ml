(* Tests for the observability layer: span balance and nesting per
   domain, Chrome-trace export well-formedness, and the unified stats
   registry. *)

(* ---- a minimal JSON well-formedness checker ----------------------- *)
(* Recursive-descent validator (no external json dependency in the test
   stack).  Accepts exactly the RFC 8259 grammar; returns false instead
   of raising so failures print through Alcotest. *)
let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then begin
      advance ();
      true
    end
    else false
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      true
    end
    else false
  in
  let string_lit () =
    if not (expect '"') then false
    else begin
      let ok = ref true and closed = ref false in
      while !ok && not !closed && !pos < n do
        let c = s.[!pos] in
        advance ();
        if c = '"' then closed := true
        else if c = '\\' then begin
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              let hex = ref 0 in
              while
                !hex < 4
                && match peek () with
                   | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') ->
                       advance ();
                       true
                   | _ -> false
              do
                incr hex
              done;
              if !hex <> 4 then ok := false
          | _ -> ok := false
        end
        else if Char.code c < 0x20 then ok := false
      done;
      !ok && !closed
    end
  in
  let number () =
    let start = !pos in
    ignore (expect '-');
    let digits () =
      let k = ref 0 in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ();
        incr k
      done;
      !k > 0
    in
    if not (digits ()) then false
    else begin
      (if peek () = Some '.' then begin
         advance ();
         if not (digits ()) then pos := -1 - n
       end);
      (match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          if not (digits ()) then pos := -1 - n
      | _ -> ());
      !pos > start
    end
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if expect '}' then true else members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if expect ']' then true else elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> false
  and members () =
    skip_ws ();
    if not (string_lit ()) then false
    else begin
      skip_ws ();
      if not (expect ':') then false
      else if not (value ()) then false
      else begin
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' ->
            advance ();
            true
        | _ -> false
      end
    end
  and elements () =
    if not (value ()) then false
    else begin
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          elements ()
      | Some ']' ->
          advance ();
          true
      | _ -> false
    end
  in
  let ok = value () in
  skip_ws ();
  ok && !pos = n

(* Run [f] with tracing enabled on a clean buffer, restoring the
   disabled default afterwards so other tests are unaffected. *)
let with_tracing f =
  Putil.Obs.clear ();
  Putil.Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Putil.Obs.set_enabled false;
      Putil.Obs.clear ())
    f

(* Per-tid stack check: every 'E' closes the last open 'B' of the same
   name, and no tid ends with an open span. *)
let check_balanced (evs : Putil.Obs.event list) =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Putil.Obs.event) ->
      let st = Option.value ~default:[] (Hashtbl.find_opt stacks e.tid) in
      match e.ph with
      | 'B' -> Hashtbl.replace stacks e.tid (e.name :: st)
      | 'E' -> (
          match st with
          | top :: rest ->
              Alcotest.(check string) "E closes the innermost B" top e.name;
              Hashtbl.replace stacks e.tid rest
          | [] -> Alcotest.fail "E without matching B")
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun _tid st ->
      Alcotest.(check int) "all spans closed" 0 (List.length st))
    stacks

let test_disabled_is_transparent () =
  Putil.Obs.clear ();
  Putil.Obs.set_enabled false;
  let r = Putil.Obs.span ~cat:"test" "noop" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "no events recorded" 0 (Putil.Obs.event_count ())

let test_spans_balanced_nested () =
  with_tracing (fun () ->
      let r =
        Putil.Obs.span ~cat:"test" "outer" (fun () ->
            Putil.Obs.span ~cat:"test" "inner" (fun () -> 7)
            + Putil.Obs.span ~cat:"test" "inner" (fun () -> 35))
      in
      Alcotest.(check int) "result" 42 r;
      let evs = Putil.Obs.events () in
      Alcotest.(check int) "three B/E pairs" 6 (List.length evs);
      check_balanced evs;
      (* timestamps are non-decreasing in export order *)
      let rec mono = function
        | (a : Putil.Obs.event) :: (b : Putil.Obs.event) :: rest ->
            a.ts <= b.ts && mono (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) "sorted by ts" true (mono evs))

let test_span_closes_on_exception () =
  with_tracing (fun () ->
      (try
         Putil.Obs.span ~cat:"test" "boom" (fun () -> failwith "expected")
       with Failure _ -> ());
      check_balanced (Putil.Obs.events ());
      Alcotest.(check int) "B and E both recorded" 2
        (Putil.Obs.event_count ()))

let test_spans_across_pool_domains () =
  with_tracing (fun () ->
      let pool = Putil.Pool.create ~size:3 () in
      (* rendezvous: each task waits until a second task has started, so
         one fast worker cannot drain the whole list and the trace is
         guaranteed to cover more than one domain *)
      let started = Atomic.make 0 in
      let wait_for_peer () =
        let spins = ref 0 in
        while Atomic.get started < 2 && !spins < 50_000_000 do
          incr spins;
          Domain.cpu_relax ()
        done
      in
      Fun.protect
        ~finally:(fun () -> Putil.Pool.shutdown pool)
        (fun () ->
          let xs =
            Putil.Pool.parallel_map pool
              (fun i ->
                Putil.Obs.span ~cat:"test"
                  ~args:[ ("i", string_of_int i) ]
                  "work"
                  (fun () ->
                    Atomic.incr started;
                    wait_for_peer ();
                    (* nested span on the same worker domain *)
                    Putil.Obs.span ~cat:"test" "leaf" (fun () -> i * 2)))
              [ 1; 2; 3; 4; 5; 6; 7; 8 ]
          in
          Alcotest.(check (list int)) "results ordered"
            [ 2; 4; 6; 8; 10; 12; 14; 16 ]
            xs);
      let evs = Putil.Obs.events () in
      check_balanced evs;
      let tids =
        List.sort_uniq compare
          (List.map (fun (e : Putil.Obs.event) -> e.tid) evs)
      in
      Alcotest.(check bool) "events from more than one domain" true
        (List.length tids > 1))

let test_chrome_json_valid () =
  with_tracing (fun () ->
      Putil.Obs.span ~cat:"a" ~args:[ ("k", "v\"with\nquotes\x01") ] "s1"
        (fun () -> Putil.Obs.instant ~cat:"a" "marker");
      let s = Putil.Obs.to_chrome_json () in
      Alcotest.(check bool) "valid JSON" true (json_valid s);
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        nn = 0 || go 0
      in
      Alcotest.(check bool) "has traceEvents" true (contains s "traceEvents");
      Alcotest.(check bool) "has begin phase" true
        (contains s "\"ph\":\"B\"");
      Alcotest.(check bool) "has instant phase" true
        (contains s "\"ph\":\"i\""))

let test_empty_trace_still_valid () =
  Putil.Obs.clear ();
  Putil.Obs.set_enabled false;
  Alcotest.(check bool) "empty trace is valid JSON" true
    (json_valid (Putil.Obs.to_chrome_json ()))

let test_stats_registry () =
  (* lp registers at Lp.Stats init, cache/pool at Putil init; touch the
     modules so the linker keeps them. *)
  Lp.Stats.reset ();
  ignore (Putil.Pool.totals ());
  let j = Putil.Obs.stats_json () in
  (match j with
  | Putil.Obs.Assoc kvs ->
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "registry has %S" key)
            true (List.mem_assoc key kvs))
        [ "lp"; "cache"; "pool"; "trace" ];
      (* keys are sorted, so the document layout is deterministic *)
      let keys = List.map fst kvs in
      Alcotest.(check bool) "keys sorted" true
        (List.sort compare keys = keys)
  | _ -> Alcotest.fail "stats_json is not an object");
  Alcotest.(check bool) "stats serialize to valid JSON" true
    (json_valid (Putil.Obs.stats_to_string ()))

let test_pool_counters () =
  let before = Putil.Pool.totals () in
  let pool = Putil.Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Putil.Pool.shutdown pool)
    (fun () ->
      ignore (Putil.Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3; 4 ]));
  let after = Putil.Pool.totals () in
  Alcotest.(check bool) "submitted grows" true
    (after.Putil.Pool.submitted >= before.Putil.Pool.submitted + 4);
  Alcotest.(check bool) "run grows" true
    (after.Putil.Pool.run >= before.Putil.Pool.run + 4)

let test_traced_result_unchanged () =
  (* the hard invariant: tracing must not perturb computed values *)
  let work () =
    let g =
      Workloads.Apps.comd
        { Workloads.Apps.default_params with nranks = 2; iterations = 2 }
    in
    let sc = Core.Scenario.make g in
    let r = Runtime.Static.run sc ~job_cap:80.0 in
    r.Simulate.Engine.makespan
  in
  Putil.Obs.set_enabled false;
  let off = work () in
  let on = with_tracing work in
  Alcotest.(check (float 0.0)) "identical makespan traced vs not" off on

let suite =
  [
    ( "util.obs",
      [
        Alcotest.test_case "disabled is transparent" `Quick
          test_disabled_is_transparent;
        Alcotest.test_case "balanced nested spans" `Quick
          test_spans_balanced_nested;
        Alcotest.test_case "span closes on exception" `Quick
          test_span_closes_on_exception;
        Alcotest.test_case "spans across pool domains" `Quick
          test_spans_across_pool_domains;
        Alcotest.test_case "chrome json valid" `Quick test_chrome_json_valid;
        Alcotest.test_case "empty trace valid" `Quick
          test_empty_trace_still_valid;
        Alcotest.test_case "stats registry" `Quick test_stats_registry;
        Alcotest.test_case "pool counters" `Quick test_pool_counters;
        Alcotest.test_case "traced result unchanged" `Quick
          test_traced_result_unchanged;
      ] );
  ]
