The CLI lists its subcommands:

  $ ../../bin/powerlim.exe --help=plain | head -3
  NAME
         powerlim - Finding the limits of power-constrained application
         performance

Generate a trace, solve it, and check the LP bound is validated:

  $ ../../bin/powerlim.exe trace --app comd --ranks 4 --iters 2 -o comd.trace
  wrote graph: 4 ranks, 4 vertices, 12 tasks, 0 messages to comd.trace
  $ ../../bin/powerlim.exe solve-trace comd.trace --cap 35
  graph: 4 ranks, 4 vertices, 12 tasks, 0 messages
  LP bound 1.9723 s; replay 1.9727 s; max power 140.0 / 140 W; within cap: true

The frontier has the Table 1 shape (reduced threads only at 1.2 GHz):

  $ ../../bin/powerlim.exe frontier --app comd | head -4
  convex Pareto frontier of CoMD task 80 (rank 0):
  1.2GHz/1thr: 6.847s at 19.31W
  1.2GHz/2thr: 3.553s at 20.62W
  1.2GHz/3thr: 2.474s at 21.94W

A structural what-if maps the baseline basis across the edit and
dual-repairs (byte-identical to the cold path, POWERLIM_WARM=0):

  $ ../../bin/powerlim.exe what-if --app comd --ranks 4 --iters 2 --cap 35 --drop-rank 3 2>/dev/null
  baseline : 1.9723 s at 140 W (35 W x 4 sockets)
  edit     : drop-rank 3
  what-if  : 1.6345 s (LP: 23 rows, 136 cols)
  delta    : -0.3378 s (-17.13%)
  $ POWERLIM_WARM=0 ../../bin/powerlim.exe what-if --app comd --ranks 4 --iters 2 --cap 35 --drop-rank 3 2>/dev/null
  baseline : 1.9723 s at 140 W (35 W x 4 sockets)
  edit     : drop-rank 3
  what-if  : 1.6345 s (LP: 23 rows, 136 cols)
  delta    : -0.3378 s (-17.13%)

The Dantzig-Wolfe decomposition crosses over to a certified monolithic
basis, so sweep output is byte-identical whether the decomposition is
off, on with one worker, or on with four:

  $ POWERLIM_DW=0 ../../bin/powerlim.exe sweep --ranks 4 --iters 2 --no-cache >sweep.mono 2>/dev/null
  $ POWERLIM_DW=1 POWERLIM_DW_MIN_RANKS=2 POWERLIM_JOBS=1 ../../bin/powerlim.exe sweep --ranks 4 --iters 2 --no-cache >sweep.dw1 2>/dev/null
  $ POWERLIM_DW=1 POWERLIM_DW_MIN_RANKS=2 POWERLIM_JOBS=4 ../../bin/powerlim.exe sweep --ranks 4 --iters 2 --no-cache >sweep.dw4 2>/dev/null
  $ cmp sweep.mono sweep.dw1 && cmp sweep.mono sweep.dw4 && echo identical
  identical

Exporting the LP as MPS produces a parseable file:

  $ ../../bin/powerlim.exe export --app comd --ranks 4 --iters 2 --cap 35 --mps comd.mps
  wrote event LP (MPS) to comd.mps
  $ head -3 comd.mps
  NAME          powerlim-event-lp
  ROWS
   N  OBJ
