(* Tests for the crash-safe write path (Putil.Fileio), the on-disk
   artifact store (Putil.Disk_store) and the validated environment
   readers (Putil.Env): atomicity under exceptions, debris sweeping,
   corrupt-artifact quarantine, LRU eviction under a byte bound,
   cross-open warmth, and the warn-once knob rejection contract. *)

let mkdtemp () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "powerlim-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = mkdtemp () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Fileio: atomic writes                                               *)
(* ------------------------------------------------------------------ *)

let test_fileio_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Putil.Fileio.write path "hello \x00 binary \xff bytes";
      Alcotest.(check string) "round-trips binary content"
        "hello \x00 binary \xff bytes" (Putil.Fileio.read path);
      (* overwrite goes through the same rename, old content replaced *)
      Putil.Fileio.write path "v2";
      Alcotest.(check string) "replaced" "v2" (Putil.Fileio.read path);
      Alcotest.(check (list string)) "no temp debris left" [ "out.json" ]
        (Array.to_list (Sys.readdir dir)))

let test_fileio_exception_leaves_target_untouched () =
  with_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Putil.Fileio.write path "original";
      (match
         Putil.Fileio.with_out path (fun oc ->
             output_string oc "partial garbage";
             failwith "writer crashed")
       with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
      Alcotest.(check string) "target keeps the previous bytes" "original"
        (Putil.Fileio.read path);
      Alcotest.(check (list string)) "temp file was removed" [ "out.json" ]
        (Array.to_list (Sys.readdir dir)))

let test_fileio_temp_naming () =
  Alcotest.(check bool) "recognizes its own temp names" true
    (Putil.Fileio.is_temp "x.art.tmp-powerlim-123.0");
  Alcotest.(check bool) "plain artifacts are not temps" false
    (Putil.Fileio.is_temp "serve-abcdef.art")

(* ------------------------------------------------------------------ *)
(* Disk store: basic mechanics                                         *)
(* ------------------------------------------------------------------ *)

let test_store_put_get () =
  with_dir (fun dir ->
      let s = Putil.Disk_store.open_ ~root:dir () in
      Alcotest.(check (option string)) "miss on empty store" None
        (Putil.Disk_store.get s "serve:deadbeef");
      Putil.Disk_store.put s "serve:deadbeef" "payload bytes";
      Alcotest.(check (option string)) "hit returns the payload"
        (Some "payload bytes")
        (Putil.Disk_store.get s "serve:deadbeef");
      Alcotest.(check bool) "mem sees it" true
        (Putil.Disk_store.mem s "serve:deadbeef");
      Alcotest.(check int) "one entry" 1 (Putil.Disk_store.entries s);
      let st = Putil.Disk_store.stats s in
      Alcotest.(check int) "one miss" 1 st.Putil.Disk_store.misses;
      Alcotest.(check int) "one hit" 1 st.Putil.Disk_store.hits;
      Alcotest.(check int) "one put" 1 st.Putil.Disk_store.puts)

let test_store_debris_swept_on_open () =
  with_dir (fun dir ->
      (* a killed writer leaves a temp file; open_ must sweep it and
         must not index it as an artifact *)
      let debris = Filename.concat dir "serve-x.art.tmp-powerlim-99.0" in
      let oc = open_out debris in
      output_string oc "torn";
      close_out oc;
      let s = Putil.Disk_store.open_ ~root:dir () in
      Alcotest.(check bool) "debris removed" false (Sys.file_exists debris);
      Alcotest.(check int) "nothing indexed" 0 (Putil.Disk_store.entries s))

let test_store_corrupt_artifact_is_clean_miss () =
  with_dir (fun dir ->
      let s = Putil.Disk_store.open_ ~root:dir () in
      Putil.Disk_store.put s "k" "precious";
      (* corrupt the artifact in place (flip bytes mid-file), keeping
         its final name: the digest check must catch it *)
      let file =
        match
          List.filter
            (fun f -> Filename.check_suffix f ".art")
            (Array.to_list (Sys.readdir dir))
        with
        | [ f ] -> Filename.concat dir f
        | l -> Alcotest.failf "expected one artifact, got %d" (List.length l)
      in
      let bytes = Putil.Fileio.read file in
      let corrupted = Bytes.of_string bytes in
      let mid = Bytes.length corrupted - 1 in
      Bytes.set corrupted mid
        (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0xff));
      let oc = open_out_bin file in
      output_bytes oc corrupted;
      close_out oc;
      (* a second open simulates the restart that finds the bad file *)
      let s2 = Putil.Disk_store.open_ ~root:dir () in
      Alcotest.(check (option string)) "corrupt artifact reads as a miss"
        None (Putil.Disk_store.get s2 "k");
      Alcotest.(check bool) "and is quarantined (deleted)" false
        (Sys.file_exists file);
      Alcotest.(check (option string)) "stays a miss" None
        (Putil.Disk_store.get s2 "k");
      ignore s)

let test_store_truncated_artifact_is_clean_miss () =
  with_dir (fun dir ->
      let s = Putil.Disk_store.open_ ~root:dir () in
      Putil.Disk_store.put s "k" (String.make 256 'x');
      let file =
        Filename.concat dir
          (List.find
             (fun f -> Filename.check_suffix f ".art")
             (Array.to_list (Sys.readdir dir)))
      in
      let bytes = Putil.Fileio.read file in
      let oc = open_out_bin file in
      output_string oc (String.sub bytes 0 (String.length bytes / 2));
      close_out oc;
      let s2 = Putil.Disk_store.open_ ~root:dir () in
      Alcotest.(check (option string)) "truncated artifact reads as a miss"
        None (Putil.Disk_store.get s2 "k");
      Alcotest.(check bool) "and is deleted" false (Sys.file_exists file))

let test_store_eviction_under_size_bound () =
  with_dir (fun dir ->
      (* each artifact is ~1KB of payload plus framing; a 4KB bound
         holds only a few *)
      let payload i = String.make 1024 (Char.chr (Char.code 'a' + i)) in
      let s = Putil.Disk_store.open_ ~limit_bytes:4096 ~root:dir () in
      for i = 0 to 7 do
        Putil.Disk_store.put s (Printf.sprintf "k%d" i) (payload i)
      done;
      Alcotest.(check bool) "bounded bytes" true
        (Putil.Disk_store.total_bytes s <= 4096);
      let st = Putil.Disk_store.stats s in
      Alcotest.(check bool) "evicted something" true
        (st.Putil.Disk_store.evictions > 0);
      (* LRU: the freshest key survives, the oldest is gone *)
      Alcotest.(check (option string)) "freshest survives" (Some (payload 7))
        (Putil.Disk_store.get s "k7");
      Alcotest.(check (option string)) "oldest evicted" None
        (Putil.Disk_store.get s "k0"))

let test_store_oversized_artifact_not_stored () =
  with_dir (fun dir ->
      let s = Putil.Disk_store.open_ ~limit_bytes:512 ~root:dir () in
      Putil.Disk_store.put s "big" (String.make 4096 'x');
      Alcotest.(check (option string)) "larger than the whole bound" None
        (Putil.Disk_store.get s "big");
      Alcotest.(check int) "no entries" 0 (Putil.Disk_store.entries s))

let test_store_warm_across_opens () =
  with_dir (fun dir ->
      let s1 = Putil.Disk_store.open_ ~root:dir () in
      Putil.Disk_store.put s1 "warm-key" "survives restarts";
      (* a second open_ plays the role of the restarted process: it
         must index the artifact from the directory alone *)
      let s2 = Putil.Disk_store.open_ ~root:dir () in
      Alcotest.(check int) "restart indexes the artifact" 1
        (Putil.Disk_store.entries s2);
      Alcotest.(check (option string)) "restart reads it back"
        (Some "survives restarts")
        (Putil.Disk_store.get s2 "warm-key"))

let test_store_cross_process_visibility () =
  with_dir (fun dir ->
      (* both handles open before the write: handle B's in-memory index
         cannot know the key, so its get must probe the filesystem *)
      let a = Putil.Disk_store.open_ ~root:dir () in
      let b = Putil.Disk_store.open_ ~root:dir () in
      Putil.Disk_store.put a "late-key" "written after b opened";
      Alcotest.(check (option string)) "b sees a's write"
        (Some "written after b opened")
        (Putil.Disk_store.get b "late-key"))

(* ------------------------------------------------------------------ *)
(* cache <-> store tier wiring                                         *)
(* ------------------------------------------------------------------ *)

let with_cache_enabled f =
  let was = Putil.Cache.enabled () in
  Putil.Cache.set_enabled true;
  Fun.protect ~finally:(fun () -> Putil.Cache.set_enabled was) f

let test_cache_spills_to_store_and_revives () =
  with_dir (fun dir ->
      with_cache_enabled (fun () ->
          let s = Putil.Disk_store.open_ ~root:dir () in
          let c = Putil.Cache.create ~capacity:2 ~name:"test-tier" () in
          Putil.Cache.set_tier c
            ~spill:(fun key v -> Putil.Disk_store.put s key v)
            ~revive:(fun key -> Putil.Disk_store.get s key)
            ();
          let v, w = Putil.Cache.find_or_build_where c "a" (fun () -> "A") in
          Alcotest.(check string) "built value" "A" v;
          Alcotest.(check bool) "first lookup builds" true (w = `Built);
          let _, w = Putil.Cache.find_or_build_where c "a" (fun () -> "A'") in
          Alcotest.(check bool) "second lookup hits memory" true (w = `Hit);
          (* push "a" out of the 2-entry cache: eviction must spill *)
          ignore (Putil.Cache.find_or_build c "b" (fun () -> "B"));
          ignore (Putil.Cache.find_or_build c "c" (fun () -> "C"));
          Alcotest.(check (option string)) "evicted entry spilled to disk"
            (Some "A") (Putil.Disk_store.get s "a");
          let v, w =
            Putil.Cache.find_or_build_where c "a" (fun () ->
                Alcotest.fail "revive must preempt the builder")
          in
          Alcotest.(check string) "revived bytes" "A" v;
          Alcotest.(check bool) "provenance is revived" true (w = `Revived);
          let _, w = Putil.Cache.find_or_build_where c "a" (fun () -> "A''") in
          Alcotest.(check bool) "revived entry is resident again" true
            (w = `Hit)))

(* ------------------------------------------------------------------ *)
(* Env: validated knob readers                                         *)
(* ------------------------------------------------------------------ *)

(* Scoped env override; putenv cannot unset, so restore to "" which the
   readers treat as unset. *)
let with_env kvs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) kvs in
  List.iter (fun (k, v) -> Unix.putenv k v) kvs;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved;
      Putil.Env.reset_warnings ())

let test_env_empty_means_default () =
  with_env [ ("POWERLIM_TEST_KNOB", "") ] (fun () ->
      Alcotest.(check int) "empty = default" 7
        (Putil.Env.int "POWERLIM_TEST_KNOB" ~default:7);
      Alcotest.(check bool) "empty is not explicit" false
        (Putil.Env.explicit "POWERLIM_TEST_KNOB"));
  with_env [ ("POWERLIM_TEST_KNOB", "   ") ] (fun () ->
      Alcotest.(check int) "whitespace-only = default" 7
        (Putil.Env.int "POWERLIM_TEST_KNOB" ~default:7);
      Alcotest.(check bool) "whitespace-only is not explicit" false
        (Putil.Env.explicit "POWERLIM_TEST_KNOB"))

let test_env_malformed_rejected_with_default () =
  with_env [ ("POWERLIM_TEST_KNOB", "banana") ] (fun () ->
      Putil.Env.reset_warnings ();
      Alcotest.(check int) "malformed int falls back" 5
        (Putil.Env.int "POWERLIM_TEST_KNOB" ~default:5);
      Alcotest.(check bool) "malformed flag falls back" true
        (Putil.Env.flag "POWERLIM_TEST_KNOB" ~default:true);
      Alcotest.(check
                  (list (pair string string)))
        "rejection recorded once per variable"
        [ ("POWERLIM_TEST_KNOB", "banana") ]
        (Putil.Env.rejected ());
      Alcotest.(check bool) "malformed is still explicit" true
        (Putil.Env.explicit "POWERLIM_TEST_KNOB"))

let test_env_bounds () =
  with_env [ ("POWERLIM_TEST_KNOB", "0") ] (fun () ->
      Putil.Env.reset_warnings ();
      Alcotest.(check int) "below lo rejected" 64
        (Putil.Env.int ~lo:1 "POWERLIM_TEST_KNOB" ~default:64);
      Alcotest.(check int) "one rejection" 1
        (List.length (Putil.Env.rejected ())));
  with_env [ ("POWERLIM_TEST_KNOB", "1.0") ] (fun () ->
      Putil.Env.reset_warnings ();
      Alcotest.(check (float 0.0)) "at exclusive bound rejected" 2.0
        (Putil.Env.float ~lo_exclusive:1.0 "POWERLIM_TEST_KNOB" ~default:2.0));
  with_env [ ("POWERLIM_TEST_KNOB", "nan") ] (fun () ->
      Putil.Env.reset_warnings ();
      Alcotest.(check (float 0.0)) "nan rejected" 2.0
        (Putil.Env.float "POWERLIM_TEST_KNOB" ~default:2.0))

let test_env_flag_spellings () =
  List.iter
    (fun v ->
      with_env [ ("POWERLIM_TEST_KNOB", v) ] (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "%S is false" v)
            false
            (Putil.Env.flag "POWERLIM_TEST_KNOB" ~default:true)))
    [ "0"; "false"; "off"; "no"; "FALSE"; "Off" ];
  List.iter
    (fun v ->
      with_env [ ("POWERLIM_TEST_KNOB", v) ] (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "%S is true" v)
            true
            (Putil.Env.flag "POWERLIM_TEST_KNOB" ~default:false)))
    [ "1"; "true"; "on"; "yes"; "TRUE"; "On" ]

let suite =
  [
    ( "util.store",
      [
        Alcotest.test_case "fileio round-trip, no debris" `Quick
          test_fileio_roundtrip;
        Alcotest.test_case "fileio exception leaves target untouched" `Quick
          test_fileio_exception_leaves_target_untouched;
        Alcotest.test_case "fileio temp naming" `Quick test_fileio_temp_naming;
        Alcotest.test_case "store put/get" `Quick test_store_put_get;
        Alcotest.test_case "debris swept on open" `Quick
          test_store_debris_swept_on_open;
        Alcotest.test_case "corrupt artifact = clean miss" `Quick
          test_store_corrupt_artifact_is_clean_miss;
        Alcotest.test_case "truncated artifact = clean miss" `Quick
          test_store_truncated_artifact_is_clean_miss;
        Alcotest.test_case "eviction under size bound" `Quick
          test_store_eviction_under_size_bound;
        Alcotest.test_case "oversized artifact not stored" `Quick
          test_store_oversized_artifact_not_stored;
        Alcotest.test_case "warm across opens" `Quick
          test_store_warm_across_opens;
        Alcotest.test_case "cross-process visibility" `Quick
          test_store_cross_process_visibility;
        Alcotest.test_case "cache spills to store and revives" `Quick
          test_cache_spills_to_store_and_revives;
      ] );
    ( "util.env",
      [
        Alcotest.test_case "empty means default" `Quick
          test_env_empty_means_default;
        Alcotest.test_case "malformed rejected with default" `Quick
          test_env_malformed_rejected_with_default;
        Alcotest.test_case "bounds enforced" `Quick test_env_bounds;
        Alcotest.test_case "flag spellings" `Quick test_env_flag_spellings;
      ] );
  ]
