(* Tests for the content-hash-keyed artifact cache (Putil.Cache), the
   pipeline stage keys, and the invariants the rest of the repo leans
   on: keys are deterministic and input-sensitive, the cache stays
   bounded under churn, concurrent same-key builds run once
   (single-flight), disabling the cache changes nothing but wall time,
   and scenario assembly physically shares equal frontiers. *)

let with_enabled b f =
  let was = Putil.Cache.enabled () in
  Putil.Cache.set_enabled b;
  Fun.protect
    ~finally:(fun () ->
      Putil.Cache.set_enabled was;
      Putil.Cache.clear_all ();
      Putil.Cache.reset_all_stats ())
    f

let params ?(nranks = 4) ?(iterations = 3) ?(seed = 42) () =
  { Workloads.Apps.nranks; iterations; seed; scale = 1.0 }

let key_str src = Pipeline.Key.to_string (Pipeline.Stages.source_key src)

(* ------------------------------------------------------------------ *)
(* key determinism and sensitivity                                     *)
(* ------------------------------------------------------------------ *)

let prop_key_deterministic =
  QCheck.Test.make ~count:50 ~name:"equal inputs derive equal scenario keys"
    QCheck.(triple (int_range 2 6) (int_range 1 4) (int_range 0 999))
    (fun (nranks, iterations, seed) ->
      let src () =
        Pipeline.Stages.Synthetic
          (Workloads.Apps.CoMD, params ~nranks ~iterations ~seed ())
      in
      Pipeline.Key.equal
        (Pipeline.Stages.scenario_key (src ()))
        (Pipeline.Stages.scenario_key (src ())))

let test_key_sensitivity () =
  let base = Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params ()) in
  let k0 = Pipeline.Stages.scenario_key base in
  let differs what src =
    Alcotest.(check bool)
      (what ^ " changes the key") false
      (Pipeline.Key.equal k0 (Pipeline.Stages.scenario_key src))
  in
  differs "workload seed"
    (Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params ~seed:43 ()));
  differs "rank count"
    (Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params ~nranks:5 ()));
  differs "application"
    (Pipeline.Stages.Synthetic (Workloads.Apps.SP, params ()));
  Alcotest.(check bool) "socket seed changes the key" false
    (Pipeline.Key.equal k0 (Pipeline.Stages.scenario_key ~socket_seed:8 base));
  Alcotest.(check bool) "variability changes the key" false
    (Pipeline.Key.equal k0 (Pipeline.Stages.scenario_key ~variability:0.08 base))

let test_scenario_digest_deterministic () =
  with_enabled false (fun () ->
      let build () =
        Pipeline.Stages.scenario
          (Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params ()))
      in
      let a = build () and b = build () in
      Alcotest.(check bool) "distinct builds" false (a == b);
      Alcotest.(check string) "equal digests" (Core.Scenario.digest a)
        (Core.Scenario.digest b);
      Alcotest.(check bool) "structurally equal" true (Core.Scenario.equal a b))

let test_trace_file_content_key () =
  let g =
    Workloads.Apps.comd
      { Workloads.Apps.default_params with nranks = 2; iterations = 2 }
  in
  let path = Filename.temp_file "powerlim" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dag.Trace_io.to_file path g;
      let k1 = key_str (Pipeline.Stages.Trace_file path) in
      let k2 = key_str (Pipeline.Stages.Trace_file path) in
      Alcotest.(check string) "stable across reads" k1 k2;
      (* same path, different bytes: the key must follow the content *)
      Dag.Trace_io.to_file path
        (Workloads.Apps.comd
           { Workloads.Apps.default_params with nranks = 2; iterations = 3 });
      Alcotest.(check bool) "content change changes the key" false
        (String.equal k1 (key_str (Pipeline.Stages.Trace_file path))))

(* ------------------------------------------------------------------ *)
(* cache mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_hit_returns_same_value () =
  with_enabled true (fun () ->
      let c = Putil.Cache.create ~capacity:4 ~name:"test-hit" () in
      let v1 = Putil.Cache.find_or_build c "k" (fun () -> ref 1) in
      let v2 = Putil.Cache.find_or_build c "k" (fun () -> ref 2) in
      Alcotest.(check bool) "physically shared" true (v1 == v2);
      let st = Putil.Cache.stats c in
      Alcotest.(check int) "one miss" 1 st.Putil.Cache.misses;
      Alcotest.(check int) "one hit" 1 st.Putil.Cache.hits)

let test_bounded_under_churn () =
  with_enabled true (fun () ->
      let c = Putil.Cache.create ~capacity:8 ~name:"test-churn" () in
      for i = 0 to 199 do
        ignore (Putil.Cache.find_or_build c (string_of_int i) (fun () -> i))
      done;
      Alcotest.(check bool) "bounded" true (Putil.Cache.length c <= 8);
      let st = Putil.Cache.stats c in
      Alcotest.(check int) "all misses" 200 st.Putil.Cache.misses;
      Alcotest.(check int) "evictions = inserts - capacity" 192
        st.Putil.Cache.evictions;
      (* LRU: the freshest keys survive *)
      ignore (Putil.Cache.find_or_build c "199" (fun () -> -1));
      Alcotest.(check int) "fresh key still cached" 200
        (Putil.Cache.stats c).Putil.Cache.misses)

let test_disabled_bypasses () =
  with_enabled false (fun () ->
      let c = Putil.Cache.create ~capacity:4 ~name:"test-off" () in
      let builds = ref 0 in
      let build () = incr builds; !builds in
      let v1 = Putil.Cache.find_or_build c "k" build in
      let v2 = Putil.Cache.find_or_build c "k" build in
      Alcotest.(check int) "every call rebuilds" 2 !builds;
      Alcotest.(check (pair int int)) "fresh values" (1, 2) (v1, v2);
      Alcotest.(check int) "nothing stored" 0 (Putil.Cache.length c);
      let st = Putil.Cache.stats c in
      Alcotest.(check (pair int int)) "no traffic counted" (0, 0)
        (st.Putil.Cache.hits, st.Putil.Cache.misses))

let test_single_flight_under_pool () =
  with_enabled true (fun () ->
      let c = Putil.Cache.create ~capacity:4 ~name:"test-sf" () in
      let builds = Atomic.make 0 in
      let pool = Putil.Pool.create ~size:4 () in
      Fun.protect
        ~finally:(fun () -> Putil.Pool.shutdown pool)
        (fun () ->
          let results =
            Putil.Pool.parallel_map pool
              (fun _ ->
                Putil.Cache.find_or_build c "expensive" (fun () ->
                    Atomic.incr builds;
                    (* long enough that every worker arrives mid-build *)
                    Unix.sleepf 0.05;
                    42))
              (List.init 8 Fun.id)
          in
          Alcotest.(check (list int))
            "every caller gets the artifact"
            (List.init 8 (fun _ -> 42))
            results;
          Alcotest.(check int) "expensive builder ran once" 1
            (Atomic.get builds)))

let test_builder_exception_releases_key () =
  with_enabled true (fun () ->
      let c = Putil.Cache.create ~capacity:4 ~name:"test-exn" () in
      (match Putil.Cache.find_or_build c "k" (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
      (* the key is not wedged: a later build succeeds and is cached *)
      Alcotest.(check int) "rebuild succeeds" 7
        (Putil.Cache.find_or_build c "k" (fun () -> 7));
      Alcotest.(check int) "and is cached" 7
        (Putil.Cache.find_or_build c "k" (fun () -> 8)))

(* ------------------------------------------------------------------ *)
(* frontier sharing and end-to-end identity                            *)
(* ------------------------------------------------------------------ *)

(* Satellite regression: scenario assembly must physically share one
   frontier array across every (socket, profile) pair with equal
   content — with zero variability the fleet is uniform, so equal task
   profiles imply a shared frontier even across ranks.  The synthetic
   apps perturb every task's work, so build the repeated-profile graph
   by hand. *)
let shared_profile_scenario () =
  let p = Machine.Profile.v 1.0 in
  let b = Dag.Graph.Builder.create ~nranks:2 in
  Dag.Graph.Builder.compute b ~rank:0 ~iteration:0 ~label:"a" p;
  Dag.Graph.Builder.compute b ~rank:1 ~iteration:0 ~label:"b" p;
  ignore (Dag.Graph.Builder.collective b ());
  Dag.Graph.Builder.compute b ~rank:0 ~iteration:1 ~label:"c" p;
  Dag.Graph.Builder.compute b ~rank:1 ~iteration:1 ~label:"d" p;
  ignore (Dag.Graph.Builder.finalize b);
  Pipeline.Stages.scenario ~variability:0.0
    (Pipeline.Stages.Graph (Dag.Graph.Builder.build b))

let check_all_shared () =
  let sc = shared_profile_scenario () in
  let tasks = sc.Core.Scenario.graph.Dag.Graph.tasks in
  let compute =
    List.filter
      (fun i -> tasks.(i).Dag.Graph.profile.Machine.Profile.work > 0.0)
      (List.init (Array.length tasks) Fun.id)
  in
  Alcotest.(check int) "four compute tasks" 4 (List.length compute);
  match compute with
  | [] -> assert false
  | i0 :: rest ->
      List.iter
        (fun i ->
          Alcotest.(check bool) "equal profiles share one frontier" true
            (sc.Core.Scenario.frontiers.(i0) == sc.Core.Scenario.frontiers.(i)))
        rest

let test_frontiers_physically_shared () =
  (* holds through the global memo... *)
  with_enabled true check_all_shared;
  (* ...and through the per-build table when caching is off *)
  with_enabled false check_all_shared

(* The cache must be invisible in every output byte: a fresh sweep with
   caching on renders identically to one with caching off. *)
let test_sweep_identical_cache_on_off () =
  let config =
    {
      Experiments.Common.default_config with
      Experiments.Common.nranks = 4;
      iterations = 4;
      caps = [ 35.0; 60.0 ];
    }
  in
  let render_arm enabled =
    with_enabled enabled (fun () ->
        let s = Experiments.Sweeps.compute ~config () in
        let buf = Buffer.create 2048 in
        let ppf = Format.formatter_of_buffer buf in
        Experiments.Sweeps.fig9 s ppf;
        Experiments.Sweeps.summary s ppf;
        Format.pp_print_flush ppf ();
        Buffer.contents buf)
  in
  Alcotest.(check string) "byte-identical output" (render_arm false)
    (render_arm true)

(* What-if edits must never be served a stale prepared artifact: the
   scenario digest hashes every task frontier, so an edited scenario
   derives a fresh preparation key, and the exact inverse edit derives
   the original key again. *)
let test_edit_key_rekeys_and_inverts () =
  with_enabled false (fun () ->
      let sc =
        Pipeline.Stages.scenario
          (Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params ()))
      in
      let tid =
        let found = ref (-1) in
        Array.iteri
          (fun i f -> if !found < 0 && Array.length f > 1 then found := i)
          sc.Core.Scenario.frontiers;
        if !found < 0 then Alcotest.fail "no multi-point frontier";
        !found
      in
      let f = sc.Core.Scenario.frontiers.(tid) in
      let k = Array.length f / 2 in
      let pt = f.(k) in
      let perturb =
        Core.Event_lp.Perturb_task
          {
            tid;
            point = k;
            duration = pt.Pareto.Point.duration *. 1.1;
            power = pt.Pareto.Point.power;
          }
      in
      let inverse =
        Core.Event_lp.Perturb_task
          {
            tid;
            point = k;
            duration = pt.Pareto.Point.duration;
            power = pt.Pareto.Point.power;
          }
      in
      let cap = 160.0 in
      let k0 = Pipeline.Stages.prepare_key sc ~power_cap:cap in
      let ke = Pipeline.Stages.edit_key sc [ perturb ] ~power_cap:cap in
      Alcotest.(check bool) "edited scenario derives a fresh key" false
        (Pipeline.Key.equal k0 ke);
      let sc' = Core.Event_lp.edit_scenario sc [ perturb ] in
      Alcotest.(check bool) "edit_key = prepare_key of the edited scenario"
        true
        (Pipeline.Key.equal ke (Pipeline.Stages.prepare_key sc' ~power_cap:cap));
      Alcotest.(check bool) "inverse edit restores the original key" true
        (Pipeline.Key.equal k0
           (Pipeline.Stages.edit_key sc' [ inverse ] ~power_cap:cap));
      Alcotest.(check bool) "build flags still distinguish keys" false
        (Pipeline.Key.equal ke
           (Pipeline.Stages.edit_key ~presolve:false sc [ perturb ]
              ~power_cap:cap));
      Alcotest.(check bool) "fail-socket re-keys" false
        (Pipeline.Key.equal k0
           (Pipeline.Stages.edit_key sc [ Core.Event_lp.Fail_socket 0 ]
              ~power_cap:cap));
      Alcotest.(check bool) "drop-rank re-keys" false
        (Pipeline.Key.equal k0
           (Pipeline.Stages.edit_key sc [ Core.Event_lp.Drop_rank 0 ]
              ~power_cap:cap)))

let suite =
  [
    ( "util.cache",
      [
        QCheck_alcotest.to_alcotest prop_key_deterministic;
        Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
        Alcotest.test_case "scenario digest deterministic" `Quick
          test_scenario_digest_deterministic;
        Alcotest.test_case "trace-file keys follow content" `Quick
          test_trace_file_content_key;
        Alcotest.test_case "hit shares the artifact" `Quick
          test_hit_returns_same_value;
        Alcotest.test_case "bounded under churn" `Quick
          test_bounded_under_churn;
        Alcotest.test_case "disabled bypasses" `Quick test_disabled_bypasses;
        Alcotest.test_case "single-flight under pool" `Quick
          test_single_flight_under_pool;
        Alcotest.test_case "builder exception releases key" `Quick
          test_builder_exception_releases_key;
        Alcotest.test_case "frontiers physically shared" `Quick
          test_frontiers_physically_shared;
        Alcotest.test_case "sweep identical cache on/off" `Slow
          test_sweep_identical_cache_on_off;
        Alcotest.test_case "edit keys re-key and invert" `Quick
          test_edit_key_rekeys_and_inverts;
      ] );
  ]
