(* Integration tests of the experiment harness: each paper artifact's
   printer runs end-to-end on a tiny configuration and emits its
   expected sections and data rows. *)

let tiny =
  {
    Experiments.Common.default_config with
    Experiments.Common.nranks = 4;
    iterations = 5;
    caps = [ 35.0; 60.0 ];
  }

let render f =
  let buf = Buffer.create 2048 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let check_contains out what =
  if not (contains out what) then
    Alcotest.failf "output missing %S in:\n%s" what out

let test_fig1 () =
  let out = render (Experiments.Fig1_table1.run ~config:tiny) in
  check_contains out "Figure 1";
  check_contains out "Table 1";
  check_contains out "reduced threads only at 1.2 GHz: true";
  (* 120 configurations, one line each *)
  let data_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l ->
           String.length l > 0 && l.[0] >= '1' && l.[0] <= '2')
  in
  Alcotest.(check bool) "~120 config rows" true (List.length data_lines >= 120)

let test_fig8 () =
  let out = render (Experiments.Fig8.run ~config:tiny) in
  check_contains out "Figure 8";
  check_contains out "power limits agree within 1.9%"

let sweep = lazy (Experiments.Sweeps.compute ~config:tiny ())

let test_sweep_figures () =
  let s = Lazy.force sweep in
  let out9 = render (Experiments.Sweeps.fig9 s) in
  check_contains out9 "Figure 9";
  check_contains out9 "CoMD LULESH SP BT";
  let out10 = render (Experiments.Sweeps.fig10 s) in
  check_contains out10 "Figure 10";
  List.iter
    (fun (app, fig) ->
      let out = render (Experiments.Sweeps.per_benchmark s app) in
      check_contains out (Printf.sprintf "Figure %d" fig))
    [
      (Workloads.Apps.CoMD, 11);
      (Workloads.Apps.BT, 13);
      (Workloads.Apps.SP, 14);
      (Workloads.Apps.LULESH, 15);
    ];
  let summary = render (Experiments.Sweeps.summary s) in
  check_contains summary "max LP vs Static";
  check_contains summary "worst Conductor vs Static"

let test_sweep_points_sound () =
  (* every schedulable sweep point satisfies the bound ordering *)
  let s = Lazy.force sweep in
  List.iter
    (fun (_, sw) ->
      List.iter
        (fun (p : Experiments.Common.point) ->
          if p.Experiments.Common.schedulable then begin
            Alcotest.(check bool) "lp <= conductor span ordering" true
              (p.Experiments.Common.lp_span
              <= p.Experiments.Common.conductor_span +. 1e-6
              || p.Experiments.Common.lp_vs_conductor >= -0.01);
            Alcotest.(check bool) "power within job cap" true
              (p.Experiments.Common.lp_max_power
              <= p.Experiments.Common.job_cap *. 1.02 +. 1e-6)
          end)
        sw.Experiments.Common.points)
    s

let test_table3 () =
  let out = render (Experiments.Table3.run ~config:tiny) in
  check_contains out "Table 3";
  check_contains out "Static";
  check_contains out "Conductor";
  check_contains out "LP"

let test_fig12 () =
  let out = render (Experiments.Fig12.run ~config:tiny) in
  check_contains out "Figure 12";
  check_contains out "LP";
  check_contains out "Static"

let test_overheads () =
  let out = render (Experiments.Overheads.run ~config:tiny) in
  check_contains out "34 us/MPI call";
  check_contains out "reallocation"

let test_extensions () =
  let out = render (Experiments.Extensions.run ~config:tiny) in
  check_contains out "balancer";
  check_contains out "lp_refined_s"

(* Pinned fixture for the degenerate-warm-start rule: a cap whose power
   duals are all zero (the cap does not constrain the schedule) is
   re-solved cold by the sweep chain, so warm and cold sweeps publish
   bit-identical points.  400 W/socket is far above any CoMD task's
   draw, so the loose cap is guaranteed unconstraining; the fallback is
   then observable as exactly one extra (cold) solve in the warm arm's
   counters. *)
let test_degenerate_duals_cold_fallback () =
  let config =
    { tiny with Experiments.Common.caps = [ 35.0; 400.0 ] }
  in
  let s = Experiments.Common.make_setup config Workloads.Apps.CoMD in
  let arm warm =
    Lp.Stats.reset ();
    let sw = Experiments.Common.run_sweep ~warm s in
    (sw, Lp.Stats.snapshot ())
  in
  let sw_cold, st_cold = arm false in
  let sw_warm, st_warm = arm true in
  Alcotest.(check int) "cold arm never warm-starts" 0
    st_cold.Lp.Stats.warm_solves;
  Alcotest.(check bool) "warm arm attempted a warm start" true
    (st_warm.Lp.Stats.warm_solves >= 1);
  Alcotest.(check int) "zero-dual fallback re-solves exactly once"
    (st_cold.Lp.Stats.solves + 1)
    st_warm.Lp.Stats.solves;
  List.iter2
    (fun (a : Experiments.Common.point) (b : Experiments.Common.point) ->
      Alcotest.(check bool) "schedulable flags agree"
        a.Experiments.Common.schedulable b.Experiments.Common.schedulable;
      Alcotest.(check bool) "lp span bit-identical warm vs cold" true
        (Int64.equal
           (Int64.bits_of_float a.Experiments.Common.lp_span)
           (Int64.bits_of_float b.Experiments.Common.lp_span)))
    sw_cold.Experiments.Common.points sw_warm.Experiments.Common.points

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig1 + table1" `Quick test_fig1;
        Alcotest.test_case "fig8" `Quick test_fig8;
        Alcotest.test_case "sweep figures" `Slow test_sweep_figures;
        Alcotest.test_case "sweep soundness" `Slow test_sweep_points_sound;
        Alcotest.test_case "table3" `Quick test_table3;
        Alcotest.test_case "fig12" `Quick test_fig12;
        Alcotest.test_case "overheads" `Quick test_overheads;
        Alcotest.test_case "extensions" `Quick test_extensions;
        Alcotest.test_case "degenerate duals re-solve cold" `Slow
          test_degenerate_duals_cold_fallback;
      ] );
  ]
