(* Tests for the objective-mode layer: energy-under-deadline duality
   against the makespan mode, warm starts across the objective switch,
   and the slack-reclamation post-pass invariants. *)

let scenario app seed nranks =
  let g =
    Workloads.Apps.generate app
      { Workloads.Apps.default_params with nranks; iterations = 3; seed }
  in
  Core.Scenario.make g

let comd_sc () = scenario Workloads.Apps.CoMD 42 4

let solve_makespan sc ~cap =
  match Core.Event_lp.solve sc ~power_cap:cap with
  | Core.Event_lp.Schedule s -> s
  | Core.Event_lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Core.Event_lp.Solver_failure m -> Alcotest.failf "solver failure: %s" m

let solve_energy sc ~cap ~deadline =
  match
    Core.Event_lp.solve
      ~objective:(Core.Objective.Energy_under_deadline { deadline })
      sc ~power_cap:cap
  with
  | Core.Event_lp.Schedule s -> s
  | Core.Event_lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Core.Event_lp.Solver_failure m -> Alcotest.failf "solver failure: %s" m

let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

(* ---- cross-mode duality ------------------------------------------- *)

(* At deadline = T* the energy mode optimizes over exactly the makespan
   optimum's feasible schedules, so its optimum can only be at most the
   makespan schedule's energy; and loosening the deadline can only
   lower it further. *)
let prop_cross_mode_duality =
  QCheck.Test.make ~count:20 ~name:"energy mode dual to makespan mode"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, nranks) ->
      let sc = scenario Workloads.Apps.CoMD seed nranks in
      let cap = 45.0 *. Float.of_int nranks in
      let ms = solve_makespan sc ~cap in
      let t_star = ms.Core.Event_lp.makespan in
      let e_star = solve_energy sc ~cap ~deadline:t_star in
      if e_star.Core.Event_lp.objective
         > ms.Core.Event_lp.lp_energy +. (1e-9 *. ms.Core.Event_lp.lp_energy)
      then
        QCheck.Test.fail_reportf
          "energy optimum above makespan schedule's energy: %.6f > %.6f"
          e_star.Core.Event_lp.objective ms.Core.Event_lp.lp_energy;
      if e_star.Core.Event_lp.makespan > t_star *. (1.0 +. 1e-6) then
        QCheck.Test.fail_reportf "deadline violated: %.6f > %.6f"
          e_star.Core.Event_lp.makespan t_star;
      (* energy is non-increasing in the deadline *)
      let prev = ref e_star.Core.Event_lp.objective in
      List.for_all
        (fun m ->
          let e = solve_energy sc ~cap ~deadline:(t_star *. m) in
          let ok =
            e.Core.Event_lp.objective <= !prev +. (1e-9 *. Float.abs !prev)
          in
          prev := e.Core.Event_lp.objective;
          ok)
        [ 1.1; 1.3; 1.6; 2.0 ])

(* the two modes report both metrics: the makespan schedule's lp_energy
   must equal the energy objective's value of the same blends *)
let test_schedule_reports_both () =
  let sc = comd_sc () in
  let cap = 180.0 in
  let ms = solve_makespan sc ~cap in
  let by_blends =
    Array.fold_left
      (fun acc b -> acc +. Core.Replay.blend_energy b)
      0.0 ms.Core.Event_lp.blends
  in
  Alcotest.(check bool) "lp_energy consistent with blends" true
    (rel ms.Core.Event_lp.lp_energy by_blends < 1e-6);
  Alcotest.(check bool) "makespan mode tagged" true
    (ms.Core.Event_lp.objective_mode = Core.Objective.Makespan_under_cap);
  let es = solve_energy sc ~cap ~deadline:(2.0 *. ms.Core.Event_lp.makespan) in
  Alcotest.(check bool) "energy objective = lp_energy" true
    (rel es.Core.Event_lp.objective es.Core.Event_lp.lp_energy < 1e-9)

(* ---- warm starts across the objective switch ---------------------- *)

let test_switch_matches_cold () =
  let sc = comd_sc () in
  let cap = 170.0 in
  let ms = solve_makespan sc ~cap in
  let deadline = 1.25 *. ms.Core.Event_lp.makespan in
  let cold = solve_energy sc ~cap ~deadline in
  (* the warm cross-mode path needs the full column space *)
  let pz = Core.Event_lp.prepare ~presolve:false sc ~power_cap:cap in
  let _, basis = Core.Event_lp.solve_prepared pz ~power_cap:cap in
  let o, pz', basis' =
    Core.Event_lp.switch_objective ?warm:basis pz
      (Core.Objective.Energy_under_deadline { deadline })
  in
  (match o with
  | Core.Event_lp.Schedule s ->
      Alcotest.(check bool) "switched objective = cold objective" true
        (rel s.Core.Event_lp.objective cold.Core.Event_lp.objective < 1e-9)
  | _ -> Alcotest.fail "switch infeasible");
  (* the switched handle chains: further deadlines re-solve by RHS *)
  let deadline2 = 1.5 *. ms.Core.Event_lp.makespan in
  let cold2 = solve_energy sc ~cap ~deadline:deadline2 in
  (match
     Core.Event_lp.solve_prepared_deadline ?warm:basis' pz' ~deadline:deadline2
   with
  | Core.Event_lp.Schedule s, _ ->
      Alcotest.(check bool) "threaded deadline = cold objective" true
        (rel s.Core.Event_lp.objective cold2.Core.Event_lp.objective < 1e-9)
  | _ -> Alcotest.fail "threaded deadline infeasible");
  (* and switching back reproduces the makespan optimum *)
  match
    Core.Event_lp.switch_objective ?warm:basis' pz'
      Core.Objective.Makespan_under_cap
  with
  | Core.Event_lp.Schedule s, _, _ ->
      Alcotest.(check bool) "switch back = makespan optimum" true
        (rel s.Core.Event_lp.objective ms.Core.Event_lp.objective < 1e-9)
  | _ -> Alcotest.fail "switch back infeasible"

let test_deadline_on_makespan_handle_rejected () =
  let sc = comd_sc () in
  let pz = Core.Event_lp.prepare sc ~power_cap:180.0 in
  Alcotest.check_raises "deadline patch needs an energy handle"
    (Invalid_argument
       "Event_lp.solve_prepared_deadline: handle was prepared under the \
        makespan objective (no deadline row)")
    (fun () -> ignore (Core.Event_lp.solve_prepared_deadline pz ~deadline:1.0))

(* ---- slack reclamation -------------------------------------------- *)

let check_reclaim_invariants sc cap (s : Core.Event_lp.schedule) =
  let r = Core.Replay.reclaim sc s in
  let s' = r.Core.Replay.reclaimed in
  Alcotest.(check bool) "vertex times untouched" true
    (s'.Core.Event_lp.vertex_time == s.Core.Event_lp.vertex_time);
  Alcotest.(check bool) "makespan unchanged" true
    (s'.Core.Event_lp.makespan = s.Core.Event_lp.makespan);
  Alcotest.(check bool) "energy never increases" true
    (s'.Core.Event_lp.lp_energy <= s.Core.Event_lp.lp_energy +. 1e-9);
  Alcotest.(check bool) "reclaimed_j consistent" true
    (rel
       (s.Core.Event_lp.lp_energy -. s'.Core.Event_lp.lp_energy)
       r.Core.Replay.reclaimed_j
    < 1e-6);
  (* the stretched schedule still replays inside the cap and the
     deadline: stretches only fill precedence windows *)
  let v = Core.Replay.validate sc s' ~power_cap:cap in
  Alcotest.(check bool) "reclaimed replay within cap" true
    v.Core.Replay.within_cap;
  r

let test_reclaim_invariants () =
  let sc = comd_sc () in
  (* loose enough that the makespan optimum races non-critical tasks:
     that is where the blend padding (and hence the yield) lives *)
  let cap = 400.0 in
  let ms = solve_makespan sc ~cap in
  let r = check_reclaim_invariants sc cap ms in
  (* the makespan optimum leaves real slack off the critical path; the
     pass must find some of it *)
  Alcotest.(check bool) "makespan optimum yields reclaimable slack" true
    (r.Core.Replay.tasks_stretched > 0 && r.Core.Replay.reclaimed_j > 0.0);
  (* the energy optimum has none left by construction *)
  let es = solve_energy sc ~cap ~deadline:ms.Core.Event_lp.makespan in
  let r' = check_reclaim_invariants sc cap es in
  Alcotest.(check bool) "energy optimum near reclamation fixpoint" true
    (r'.Core.Replay.reclaimed_j
    <= 0.01 *. Float.max 1.0 es.Core.Event_lp.lp_energy)

let prop_reclaim_safe =
  QCheck.Test.make ~count:20 ~name:"reclamation invariants on random apps"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, nranks) ->
      let sc = scenario Workloads.Apps.SP seed nranks in
      let cap = 40.0 *. Float.of_int nranks in
      let ms = solve_makespan sc ~cap in
      let r = Core.Replay.reclaim sc ms in
      let s' = r.Core.Replay.reclaimed in
      if s'.Core.Event_lp.makespan <> ms.Core.Event_lp.makespan then
        QCheck.Test.fail_reportf "makespan changed by reclamation";
      if s'.Core.Event_lp.lp_energy > ms.Core.Event_lp.lp_energy +. 1e-9 then
        QCheck.Test.fail_reportf "reclamation raised energy";
      let v = Core.Replay.validate sc s' ~power_cap:cap in
      if not v.Core.Replay.within_cap then
        QCheck.Test.fail_reportf "reclaimed schedule violates the cap";
      true)

let suite =
  [
    ( "objective.duality",
      [
        QCheck_alcotest.to_alcotest prop_cross_mode_duality;
        Alcotest.test_case "both metrics reported" `Quick
          test_schedule_reports_both;
      ] );
    ( "objective.switch",
      [
        Alcotest.test_case "warm switch matches cold" `Quick
          test_switch_matches_cold;
        Alcotest.test_case "deadline patch rejected on makespan handle" `Quick
          test_deadline_on_makespan_handle_rejected;
      ] );
    ( "objective.reclaim",
      [
        Alcotest.test_case "invariants and yield" `Quick test_reclaim_invariants;
        QCheck_alcotest.to_alcotest prop_reclaim_safe;
      ] );
  ]
