(* Property tests for Putil.Pqueue, the binary min-heap backing both the
   MILP node queue and the event simulator's event queue. *)

(* Push n random keys (payload = the key rendered, to catch key/payload
   desynchronization), then pop everything: keys must come out sorted,
   every payload must match its key, and the multiset must round-trip. *)
let prop_pop_sorted =
  QCheck.Test.make ~count:500 ~name:"pqueue pops keys in sorted order"
    QCheck.(list (float_range (-1000.0) 1000.0))
    (fun keys ->
      let h = Putil.Pqueue.create () in
      List.iter (fun k -> Putil.Pqueue.push h k (string_of_float k)) keys;
      if Putil.Pqueue.length h <> List.length keys then
        QCheck.Test.fail_report "length after pushes";
      let rec drain acc =
        match Putil.Pqueue.pop h with
        | None -> List.rev acc
        | Some (k, v) ->
            if v <> string_of_float k then
              QCheck.Test.fail_reportf "payload %s detached from key %g" v k;
            drain (k :: acc)
      in
      let out = drain [] in
      if List.length out <> List.length keys then
        QCheck.Test.fail_report "lost or duplicated elements";
      let rec sorted = function
        | a :: (b :: _ as tl) ->
            if a > b then false else sorted tl
        | _ -> true
      in
      if not (sorted out) then QCheck.Test.fail_report "pop order not sorted";
      if List.sort compare out <> List.sort compare keys then
        QCheck.Test.fail_report "key multiset changed";
      true)

(* Model-based test of random push/pop interleavings: the heap must agree
   with a sorted-list reference on every pop's key, on emptiness, and on
   length throughout. *)
let prop_interleaved_model =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (2, map (fun k -> `Push k) (float_range (-50.0) 50.0));
          (1, return `Pop);
        ])
  in
  QCheck.Test.make ~count:500 ~name:"pqueue agrees with a sorted-list model"
    (QCheck.make QCheck.Gen.(list_size (int_bound 200) op_gen))
    (fun ops ->
      let h = Putil.Pqueue.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          (match op with
          | `Push k ->
              Putil.Pqueue.push h k k;
              model := List.merge compare [ k ] !model
          | `Pop -> (
              match (Putil.Pqueue.pop h, !model) with
              | None, [] -> ()
              | None, _ :: _ -> QCheck.Test.fail_report "heap empty, model not"
              | Some _, [] -> QCheck.Test.fail_report "model empty, heap not"
              | Some (k, v), m :: rest ->
                  if k <> m then
                    QCheck.Test.fail_reportf "popped %g, model says %g" k m;
                  if v <> k then
                    QCheck.Test.fail_report "payload detached from key";
                  model := rest));
          if Putil.Pqueue.length h <> List.length !model then
            QCheck.Test.fail_report "length diverged from model";
          if Putil.Pqueue.is_empty h <> (!model = []) then
            QCheck.Test.fail_report "is_empty diverged from model")
        ops;
      true)

(* The heap invariant (every parent key <= its children) holds after any
   interleaving; checked via the public API by draining a snapshot. *)
let prop_heap_invariant =
  QCheck.Test.make ~count:300
    ~name:"pqueue drain is sorted after any interleaving"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 120)
           (frequency
              [
                (3, map (fun k -> `Push k) (float_range 0.0 100.0));
                (1, return `Pop);
              ])))
    (fun ops ->
      let h = Putil.Pqueue.create () in
      List.iter
        (function
          | `Push k -> Putil.Pqueue.push h k ()
          | `Pop -> ignore (Putil.Pqueue.pop h))
        ops;
      let rec drain last =
        match Putil.Pqueue.pop h with
        | None -> true
        | Some (k, ()) ->
            if k < last then QCheck.Test.fail_report "drain out of order"
            else drain k
      in
      drain Float.neg_infinity)

let suite =
  [
    ( "util.pqueue",
      [
        QCheck_alcotest.to_alcotest prop_pop_sorted;
        QCheck_alcotest.to_alcotest prop_interleaved_model;
        QCheck_alcotest.to_alcotest prop_heap_invariant;
      ] );
  ]
