(* Tests for the domain pool (Putil.Pool) and the determinism guarantee
   of the parallel sweep engine: POWERLIM_JOBS must never change results,
   only wall time. *)

exception Boom of int

let with_pool size f =
  let pool = Putil.Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Putil.Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* parallel_map: ordering                                              *)
(* ------------------------------------------------------------------ *)

let test_map_order_parallel () =
  with_pool 4 (fun pool ->
      let xs = List.init 200 Fun.id in
      let ys = Putil.Pool.parallel_map pool (fun x -> x * x) xs in
      Alcotest.(check (list int))
        "squares in submission order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_map_order_sequential () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "sequential pool spawns no domains" 0
        (Putil.Pool.size pool);
      let ys = Putil.Pool.parallel_map pool (fun x -> x + 1) [ 3; 1; 2 ] in
      Alcotest.(check (list int)) "order preserved" [ 4; 2; 3 ] ys)

(* ------------------------------------------------------------------ *)
(* exception capture and re-raise at await                             *)
(* ------------------------------------------------------------------ *)

let test_exception_single size () =
  with_pool size (fun pool ->
      let fut = Putil.Pool.submit pool (fun () -> raise (Boom 7)) in
      match Putil.Pool.await fut with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ())

let test_exception_map size () =
  with_pool size (fun pool ->
      match
        Putil.Pool.parallel_map pool
          (fun x -> if x mod 4 = 1 then raise (Boom x) else x)
          (List.init 12 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          (* earliest failing element wins, at any pool size *)
          Alcotest.(check int) "earliest failure re-raised" 1 x)

let test_healthy_after_exception () =
  with_pool 3 (fun pool ->
      (match
         Putil.Pool.await (Putil.Pool.submit pool (fun () -> raise (Boom 0)))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      let ys = Putil.Pool.parallel_map pool (fun x -> 2 * x) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool survives task failure" [ 2; 4; 6 ] ys)

(* ------------------------------------------------------------------ *)
(* nested submission (the shape Sweeps.compute uses)                   *)
(* ------------------------------------------------------------------ *)

let test_nested_submit () =
  with_pool 2 (fun pool ->
      let v =
        Putil.Pool.await
          (Putil.Pool.submit pool (fun () ->
               let fs =
                 List.init 8 (fun i ->
                     Putil.Pool.submit pool (fun () -> i + 1))
               in
               List.fold_left (fun a f -> a + Putil.Pool.await f) 0 fs))
      in
      Alcotest.(check int) "nested awaits complete" 36 v)

let test_nested_parallel_map () =
  with_pool 3 (fun pool ->
      let grid =
        Putil.Pool.parallel_map pool
          (fun a ->
            Putil.Pool.parallel_map pool
              (fun b -> (10 * a) + b)
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2 ]
      in
      Alcotest.(check (list (list int)))
        "two-level fan-out ordered"
        [ [ 0; 1; 2; 3 ]; [ 10; 11; 12; 13 ]; [ 20; 21; 22; 23 ] ]
        grid)

let test_nested_exception () =
  with_pool 2 (fun pool ->
      match
        Putil.Pool.await
          (Putil.Pool.submit pool (fun () ->
               Putil.Pool.parallel_map pool
                 (fun b -> if b = 2 then raise (Boom b) else b)
                 [ 0; 1; 2; 3 ]))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 2 -> ())

(* ------------------------------------------------------------------ *)
(* POWERLIM_JOBS parsing                                               *)
(* ------------------------------------------------------------------ *)

let test_jobs_env_parsing () =
  let with_env v f =
    let old = Sys.getenv_opt "POWERLIM_JOBS" in
    Unix.putenv "POWERLIM_JOBS" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "POWERLIM_JOBS"
          (match old with Some s -> s | None -> ""))
      f
  in
  with_env "7" (fun () ->
      Alcotest.(check int) "explicit size" 7 (Putil.Pool.default_size ()));
  with_env "0" (fun () ->
      Alcotest.(check int) "zero clamps to sequential" 0
        (Putil.Pool.default_size ()));
  with_env "-3" (fun () ->
      Alcotest.(check int) "negative clamps to sequential" 0
        (Putil.Pool.default_size ()));
  with_env "not-a-number" (fun () ->
      Alcotest.(check bool) "garbage falls back to the machine default" true
        (Putil.Pool.default_size () >= 0))

(* ------------------------------------------------------------------ *)
(* determinism: the figure output must not depend on the pool size     *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    Experiments.Common.default_config with
    Experiments.Common.nranks = 4;
    iterations = 3;
    caps = [ 30.0; 50.0; 80.0 ];
  }

let render_sweep pool =
  let s = Experiments.Sweeps.compute ~pool ~config:small_config () in
  Fmt.str "%t%t%t%t" (Experiments.Sweeps.fig9 s) (Experiments.Sweeps.fig10 s)
    (Experiments.Sweeps.per_benchmark s Workloads.Apps.CoMD)
    (Experiments.Sweeps.summary s)

let test_sweep_determinism () =
  let seq = with_pool 1 render_sweep in
  let par = with_pool 4 render_sweep in
  Alcotest.(check string) "figure output byte-identical at 1 and 4 domains"
    seq par

(* Warm-started sweeps are a pure performance device: every point of
   [run_sweep ~warm:true] must be byte-identical to the cold path, at
   POWERLIM_JOBS=1 and 4 alike.  Points are rendered with %h (hex
   floats), so the comparison is exact to the last bit. *)
let render_points warm pool =
  let setup =
    Experiments.Common.make_setup small_config Workloads.Apps.CoMD
  in
  let sw = Experiments.Common.run_sweep ~pool ~warm setup in
  String.concat "\n"
    (List.map
       (fun (p : Experiments.Common.point) ->
         Printf.sprintf "%h %b %h %h %h %h %h %h %h %h %h" p.cap p.schedulable
           p.static_span p.conductor_span p.lp_span p.lp_objective
           p.lp_vs_static p.lp_vs_conductor p.conductor_vs_static
           p.lp_max_power p.job_cap)
       sw.Experiments.Common.points)

let test_sweep_warm_equals_cold () =
  let w1 = with_pool 1 (render_points true) in
  let c1 = with_pool 1 (render_points false) in
  let w4 = with_pool 4 (render_points true) in
  let c4 = with_pool 4 (render_points false) in
  Alcotest.(check string) "warm = cold at 1 domain" c1 w1;
  Alcotest.(check string) "warm = cold at 4 domains" c4 w4;
  Alcotest.(check string) "cold path pool-size invariant" c1 c4

let suite =
  [
    ( "util.pool",
      [
        Alcotest.test_case "parallel_map order (4 domains)" `Quick
          test_map_order_parallel;
        Alcotest.test_case "parallel_map order (sequential)" `Quick
          test_map_order_sequential;
        Alcotest.test_case "exception re-raised (parallel)" `Quick
          (test_exception_single 4);
        Alcotest.test_case "exception re-raised (sequential)" `Quick
          (test_exception_single 1);
        Alcotest.test_case "earliest exception wins (parallel)" `Quick
          (test_exception_map 4);
        Alcotest.test_case "earliest exception wins (sequential)" `Quick
          (test_exception_map 1);
        Alcotest.test_case "pool healthy after failure" `Quick
          test_healthy_after_exception;
        Alcotest.test_case "nested submit/await" `Quick test_nested_submit;
        Alcotest.test_case "nested parallel_map" `Quick
          test_nested_parallel_map;
        Alcotest.test_case "nested exception" `Quick test_nested_exception;
        Alcotest.test_case "POWERLIM_JOBS parsing" `Quick
          test_jobs_env_parsing;
      ] );
    ( "parallel.sweeps",
      [
        Alcotest.test_case "POWERLIM_JOBS=1 vs 4 byte-identical" `Slow
          test_sweep_determinism;
        Alcotest.test_case "warm vs cold byte-identical at 1 and 4 domains"
          `Slow test_sweep_warm_equals_cold;
      ] );
  ]
