(* Tests for the discrete-event engine: agreement with the static
   longest-path schedule, determinism, power-trace accounting, and
   pcontrol observations. *)

let fastest_policy (sc : Core.Scenario.t) =
  Simulate.Policy.of_point_fn "fastest" (fun ctx ->
      let tid = ctx.Simulate.Policy.task.Dag.Graph.tid in
      let f = sc.Core.Scenario.frontiers.(tid) in
      if Array.length f = 0 then
        { Pareto.Point.freq = 1.2; threads = 1; duration = 0.0; power = 0.0 }
      else Pareto.Frontier.fastest f)

let comd_small () =
  let g =
    Workloads.Apps.comd
      { Workloads.Apps.default_params with nranks = 4; iterations = 3 }
  in
  (g, Core.Scenario.make g)

let test_engine_matches_longest_path () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let ts =
    Dag.Schedule.compute g
      ~dur:(fun t -> Core.Scenario.fastest_duration sc t.Dag.Graph.tid)
      ~msg:Dag.Schedule.default_msg
  in
  Alcotest.(check (float 1e-9))
    "event-driven = longest path" ts.Dag.Schedule.makespan
    r.Simulate.Engine.makespan

let test_engine_deterministic () =
  let g, sc = comd_small () in
  let r1 = Simulate.Engine.run g (fastest_policy sc) in
  let r2 = Simulate.Engine.run g (fastest_policy sc) in
  Alcotest.(check (float 0.0)) "same makespan" r1.Simulate.Engine.makespan
    r2.Simulate.Engine.makespan;
  Alcotest.(check (float 0.0)) "same energy" r1.Simulate.Engine.energy
    r2.Simulate.Engine.energy

let test_all_tasks_recorded () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  Alcotest.(check int) "one record per task" (Dag.Graph.n_tasks g)
    (Array.length r.Simulate.Engine.records);
  Array.iter
    (fun (rc : Simulate.Engine.task_record) ->
      Alcotest.(check bool) "start >= 0" true (rc.start >= 0.0);
      Alcotest.(check bool) "within makespan" true
        (rc.start +. rc.duration <= r.Simulate.Engine.makespan +. 1e-9))
    r.Simulate.Engine.records

let test_trace_consistent_with_energy () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  (* integrate the step function independently *)
  let e = ref 0.0 in
  let n = Array.length r.Simulate.Engine.trace in
  Array.iteri
    (fun i (t, p) ->
      let t' =
        if i + 1 < n then fst r.Simulate.Engine.trace.(i + 1)
        else r.Simulate.Engine.makespan
      in
      e := !e +. (p *. (t' -. t)))
    r.Simulate.Engine.trace;
  Alcotest.(check bool) "trace integrates to energy" true
    (Float.abs (!e -. r.Simulate.Engine.energy)
    < 1e-6 *. (1.0 +. r.Simulate.Engine.energy));
  (* max power matches the max of the trace *)
  let mx =
    Array.fold_left (fun acc (_, p) -> max acc p) 0.0 r.Simulate.Engine.trace
  in
  Alcotest.(check (float 1e-9)) "max power" mx r.Simulate.Engine.max_power

let test_trace_nonnegative () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  Array.iter
    (fun (_, p) ->
      Alcotest.(check bool) "nonnegative power" true (p >= -1e-9))
    r.Simulate.Engine.trace

let test_slack_model_idle_cheaper () =
  let g, sc = comd_small () in
  let pol = fastest_policy sc in
  let task_pw = Simulate.Engine.run ~slack_model:`Task_power g pol in
  let idle = Simulate.Engine.run ~slack_model:`Idle g pol in
  Alcotest.(check (float 1e-9)) "same makespan" task_pw.Simulate.Engine.makespan
    idle.Simulate.Engine.makespan;
  Alcotest.(check bool) "idle slack uses less energy" true
    (idle.Simulate.Engine.energy <= task_pw.Simulate.Engine.energy +. 1e-6)

let test_pcontrol_observations () =
  let g, sc = comd_small () in
  let count = ref 0 in
  let windows = ref 0.0 in
  let pol = fastest_policy sc in
  let pol =
    {
      pol with
      Simulate.Policy.observe =
        (fun obs ->
          incr count;
          windows := !windows +. obs.Simulate.Policy.window;
          Alcotest.(check int) "per-rank arrays" 4
            (Array.length obs.Simulate.Policy.rank_busy));
    }
  in
  let r = Simulate.Engine.run g pol in
  (* comd emits one pcontrol collective per iteration *)
  Alcotest.(check int) "one observation per iteration" 3 !count;
  Alcotest.(check bool) "windows cover most of the run" true
    (!windows > 0.9 *. r.Simulate.Engine.makespan)

let test_pcontrol_overhead_charged () =
  let g, sc = comd_small () in
  let base = Simulate.Engine.run g (fastest_policy sc) in
  let pol = { (fastest_policy sc) with Simulate.Policy.pcontrol_overhead = 0.1 } in
  let slow = Simulate.Engine.run g pol in
  (* 3 pcontrol vertices, 0.1 s each *)
  Alcotest.(check bool) "overhead extends makespan" true
    (slow.Simulate.Engine.makespan
    >= base.Simulate.Engine.makespan +. 0.29)

let test_switch_overhead_charged () =
  let g, sc = comd_small () in
  let base = Simulate.Engine.run g (fastest_policy sc) in
  let pol = fastest_policy sc in
  let pol =
    {
      pol with
      Simulate.Policy.decide =
        (fun ctx ->
          let d = pol.Simulate.Policy.decide ctx in
          { d with Simulate.Policy.overhead = 0.05 });
    }
  in
  let slow = Simulate.Engine.run g pol in
  Alcotest.(check bool) "per-task overhead extends makespan" true
    (slow.Simulate.Engine.makespan > base.Simulate.Engine.makespan +. 0.05)

let test_stats_helpers () =
  Alcotest.(check (float 1e-12)) "median odd" 2.0 (Simulate.Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-12)) "median even" 1.5 (Simulate.Stats.median [| 1.0; 2.0 |]);
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Simulate.Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-12)) "stddev of constant" 0.0 (Simulate.Stats.stddev [| 5.0; 5.0 |]);
  Alcotest.(check (float 1e-9)) "improvement" 25.0
    (Simulate.Stats.improvement_pct ~base:5.0 ~t:4.0)

let test_sustained_max_power () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let sustained = Simulate.Engine.sustained_max_power ~ignore_below:1e-3 r in
  Alcotest.(check bool) "sustained <= max" true
    (sustained <= r.Simulate.Engine.max_power +. 1e-9);
  Alcotest.(check bool) "sustained positive" true (sustained > 0.0)



let test_release_times_delay_firing () =
  let g, sc = comd_small () in
  let base = Simulate.Engine.run g (fastest_policy sc) in
  (* delay every vertex by at least 0.5 s beyond its greedy time *)
  let release v = if v = g.Dag.Graph.init_v then 0.0 else 0.5 in
  let delayed = Simulate.Engine.run ~release g (fastest_policy sc) in
  Alcotest.(check bool) "release cannot speed things up" true
    (delayed.Simulate.Engine.makespan >= base.Simulate.Engine.makespan);
  (* the first collective fires at >= 0.5 even though tasks finish later *)
  let big_release v = if v = g.Dag.Graph.finalize_v then 100.0 else 0.0 in
  let held = Simulate.Engine.run ~release:big_release g (fastest_policy sc) in
  Alcotest.(check bool) "finalize held back" true
    (held.Simulate.Engine.makespan >= 100.0)

let test_csv_exports () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let trace = Simulate.Csv.trace_to_string r in
  let lines = String.split_on_char '\n' trace in
  (match lines with
  | header :: _ -> Alcotest.(check string) "trace header" "time_s,power_w" header
  | [] -> Alcotest.fail "empty trace csv");
  (* one row per trace sample + header + closing row + trailing newline *)
  Alcotest.(check int) "trace rows" (Array.length r.Simulate.Engine.trace + 3)
    (List.length lines);
  let recs = Simulate.Csv.records_to_string g r in
  let nonzero_tasks =
    Array.to_list g.Dag.Graph.tasks
    |> List.filter (fun (t : Dag.Graph.task) ->
           t.profile.Machine.Profile.work > 0.0)
    |> List.length
  in
  Alcotest.(check int) "record rows" (nonzero_tasks + 2)
    (List.length (String.split_on_char '\n' recs))


(* Quote-aware RFC-4180 reader: splits a CSV document into records of
   fields, honoring quoted cells (embedded commas/newlines/doubled
   quotes).  Rows are newline-terminated, so the trailing empty chunk is
   not a record. *)
let csv_parse (s : string) : string list list =
  let rows = ref [] and fields = ref [] in
  let cell = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents cell :: !fields;
    Buffer.clear cell
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let n = String.length s in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          Buffer.add_char cell '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char cell c
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' -> flush_field ()
      | '\n' -> flush_row ()
      | c -> Buffer.add_char cell c
    end;
    incr i
  done;
  if Buffer.length cell > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let test_csv_label_quoting () =
  (* labels with the four metacharacters RFC 4180 cares about *)
  let evil = "he said \"hi\", twice\nand then\ra tab\tend" in
  let b = Dag.Graph.Builder.create ~nranks:1 in
  Dag.Graph.Builder.compute b ~rank:0 ~label:evil (Machine.Profile.v 1.0);
  ignore (Dag.Graph.Builder.finalize b);
  let g = Dag.Graph.Builder.build b in
  let sc = Core.Scenario.make g in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let rows = csv_parse (Simulate.Csv.records_to_string g r) in
  (match rows with
  | _header :: data :: _ ->
      Alcotest.(check int) "evil row still has 9 fields" 9 (List.length data);
      Alcotest.(check string) "label cell roundtrips" evil (List.nth data 3)
  | _ -> Alcotest.fail "expected a header and one data row");
  (* the raw text must contain the quoted form, quotes doubled *)
  let raw = Simulate.Csv.records_to_string g r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "embedded quotes doubled" true
    (contains raw "\"he said \"\"hi\"\", twice")

let test_csv_records_parse_back () =
  (* every emitted record must split into exactly the 9 header fields *)
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let rows = csv_parse (Simulate.Csv.records_to_string g r) in
  let nonzero_tasks =
    Array.to_list g.Dag.Graph.tasks
    |> List.filter (fun (t : Dag.Graph.task) ->
           t.profile.Machine.Profile.work > 0.0)
    |> List.length
  in
  Alcotest.(check int) "header + one record per nonzero task"
    (nonzero_tasks + 1) (List.length rows);
  (match rows with
  | header :: _ ->
      Alcotest.(check (list string)) "header fields"
        [ "tid"; "rank"; "iteration"; "label"; "start_s"; "duration_s";
          "power_w"; "freq_ghz"; "threads" ]
        header
  | [] -> Alcotest.fail "empty csv");
  List.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "row %d has 9 fields" i)
        9 (List.length row))
    rows;
  (* numeric cells parse back as numbers; labels match the graph *)
  List.iteri
    (fun i row ->
      if i > 0 then begin
        let tid = int_of_string (List.nth row 0) in
        Alcotest.(check string) "label column matches task"
          g.Dag.Graph.tasks.(tid).Dag.Graph.label (List.nth row 3);
        ignore (float_of_string (List.nth row 4));
        ignore (float_of_string (List.nth row 6))
      end)
    rows

let test_gantt_render () =
  let g, sc = comd_small () in
  let r = Simulate.Engine.run g (fastest_policy sc) in
  let s = Simulate.Gantt.render ~width:40 g r in
  let lines = String.split_on_char '\n' s in
  (* one row per rank plus scale/summary lines *)
  Alcotest.(check bool) "row count" true (List.length lines >= 4 + 3);
  List.iteri
    (fun i l ->
      if i < 4 then begin
        Alcotest.(check bool) "row prefix" true
          (String.length l > 6 && l.[0] = 'r');
        (* 8 threads at full power: rows contain '8' cells *)
        Alcotest.(check bool) "has running cells" true (String.contains l '8')
      end)
    lines;
  Alcotest.check_raises "width too small"
    (Invalid_argument "Gantt.render: width too small") (fun () ->
      ignore (Simulate.Gantt.render ~width:4 g r))

let suite =
  [
    ( "simulate.engine",
      [
        Alcotest.test_case "matches longest path" `Quick test_engine_matches_longest_path;
        Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
        Alcotest.test_case "all tasks recorded" `Quick test_all_tasks_recorded;
        Alcotest.test_case "trace/energy consistency" `Quick test_trace_consistent_with_energy;
        Alcotest.test_case "trace nonnegative" `Quick test_trace_nonnegative;
        Alcotest.test_case "slack models" `Quick test_slack_model_idle_cheaper;
        Alcotest.test_case "pcontrol observations" `Quick test_pcontrol_observations;
        Alcotest.test_case "pcontrol overhead" `Quick test_pcontrol_overhead_charged;
        Alcotest.test_case "switch overhead" `Quick test_switch_overhead_charged;
        Alcotest.test_case "sustained max power" `Quick test_sustained_max_power;
        Alcotest.test_case "release times" `Quick test_release_times_delay_firing;
      ] );
    ( "simulate.stats",
      [ Alcotest.test_case "helpers" `Quick test_stats_helpers ] );
    ( "simulate.csv",
      [
        Alcotest.test_case "exports" `Quick test_csv_exports;
        Alcotest.test_case "label quoting" `Quick test_csv_label_quoting;
        Alcotest.test_case "records parse back" `Quick
          test_csv_records_parse_back;
      ] );
    ( "simulate.gantt",
      [ Alcotest.test_case "render" `Quick test_gantt_render ] );
  ]
