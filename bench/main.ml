(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md section 4 for the index), plus
   solver micro-benchmarks.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig9 table3  -- selected experiments
     RANKS=32 ITERS=20 dune exec bench/main.exe -- paper-scale run *)

let ppf = Fmt.stdout

let config () =
  let getenv_int name default =
    match Sys.getenv_opt name with
    | Some s -> (try int_of_string s with _ -> default)
    | None -> default
  in
  {
    Experiments.Common.default_config with
    Experiments.Common.nranks = getenv_int "RANKS" 16;
    iterations = getenv_int "ITERS" 10;
    seed = getenv_int "SEED" 42;
  }

(* The sweep behind figures 9-11/13-15 is computed once and shared. *)
let sweep_cache : Experiments.Sweeps.t option ref = ref None

let sweep config =
  match !sweep_cache with
  | Some s -> s
  | None ->
      Fmt.pf ppf "(running the Static/Conductor/LP power sweep...)@.";
      let s = Experiments.Sweeps.compute ~config () in
      sweep_cache := Some s;
      s

let experiments =
  [
    ("fig1", fun config -> Experiments.Fig1_table1.run ~config ppf);
    ("fig8", fun config -> Experiments.Fig8.run ~config ppf);
    ("fig9", fun config -> Experiments.Sweeps.fig9 (sweep config) ppf);
    ("fig10", fun config -> Experiments.Sweeps.fig10 (sweep config) ppf);
    ( "fig11",
      fun config ->
        Experiments.Sweeps.per_benchmark (sweep config) Workloads.Apps.CoMD ppf
    );
    ("fig12", fun config -> Experiments.Fig12.run ~config ppf);
    ( "fig13",
      fun config ->
        Experiments.Sweeps.per_benchmark (sweep config) Workloads.Apps.BT ppf );
    ( "fig14",
      fun config ->
        Experiments.Sweeps.per_benchmark (sweep config) Workloads.Apps.SP ppf );
    ( "fig15",
      fun config ->
        Experiments.Sweeps.per_benchmark (sweep config) Workloads.Apps.LULESH
          ppf );
    ("table3", fun config -> Experiments.Table3.run ~config ppf);
    ("overheads", fun config -> Experiments.Overheads.run ~config ppf);
    ("summary", fun config -> Experiments.Sweeps.summary (sweep config) ppf);
    ("ablations", fun config -> Experiments.Ablations.run ~config ppf);
    ("extensions", fun config -> Experiments.Extensions.run ~config ppf);
    ("scaling", fun config -> Experiments.Scaling.run ~config ppf);
    ("energy", fun config -> Experiments.Energy.run ~config ppf);
    ("energybench", fun config -> Experiments.Energybench.run ~config ppf);
    ("micro", fun config -> Experiments.Micro.run ~config ppf);
    ("parbench", fun config -> Experiments.Parbench.run ~config ppf);
    ("warmbench", fun config -> Experiments.Warmbench.run ~config ppf);
    ("editbench", fun config -> Experiments.Editbench.run ~config ppf);
    ("simplexbench", fun config -> Experiments.Simplexbench.run ~config ppf);
    ("cachebench", fun config -> Experiments.Cachebench.run ~config ppf);
    ("servebench", fun config -> Serve.Servebench.run ~config ppf);
  ]

let () =
  let config = config () in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> [ "all" ]
  in
  let names =
    if List.mem "all" requested then List.map fst experiments
    else begin
      List.iter
        (fun n ->
          if n <> "table1" && not (List.mem_assoc n experiments) then begin
            Fmt.epr "unknown experiment %S; available: table1 %s@." n
              (String.concat " " (List.map fst experiments));
            exit 2
          end)
        requested;
      (* table1 is printed together with fig1 *)
      List.map (fun n -> if n = "table1" then "fig1" else n) requested
    end
  in
  Fmt.pf ppf "powerlim benchmark harness: %d ranks, %d iterations, seed %d@."
    config.Experiments.Common.nranks config.Experiments.Common.iterations
    config.Experiments.Common.seed;
  (* pool size and wall times go to stderr: stdout stays byte-identical
     across POWERLIM_JOBS settings *)
  Fmt.epr "pool: %d-way parallel (POWERLIM_JOBS=%s)@."
    (Putil.Pool.parallelism (Putil.Pool.get_default ()))
    (match Sys.getenv_opt "POWERLIM_JOBS" with Some s -> s | None -> "unset");
  (* Observability exports, mirroring the powerlim CLI flags:
     POWERLIM_TRACE_OUT=t.json records spans and writes a Chrome trace,
     POWERLIM_STATS_JSON=s.json dumps the unified counter registry.
     Both only ever touch their own file and stderr. *)
  let trace_out = Sys.getenv_opt "POWERLIM_TRACE_OUT" in
  if trace_out <> None then Putil.Obs.set_enabled true;
  List.iter
    (fun n ->
      let t0 = Unix.gettimeofday () in
      Lp.Stats.reset ();
      Putil.Cache.reset_all_stats ();
      Putil.Obs.span ~cat:"bench" n (fun () -> (List.assoc n experiments) config);
      (* LP solver and pipeline-cache counters per experiment, on stderr
         with the timings (cached-sweep consumers legitimately report
         zero solves) *)
      Fmt.epr "[%s: %.2f s | lp: %a | cache: %a | sim: %d runs %.0f J]@." n
        (Unix.gettimeofday () -. t0)
        Lp.Stats.pp (Lp.Stats.snapshot ())
        Putil.Cache.pp_totals ()
        (Simulate.Engine.sim_runs ())
        (Simulate.Engine.sim_energy_j ()))
    names;
  Option.iter
    (fun path ->
      Putil.Obs.write_chrome_json path;
      Fmt.epr "wrote Chrome trace (%d events) to %s@."
        (Putil.Obs.event_count ()) path)
    trace_out;
  Option.iter
    (fun path ->
      Putil.Obs.write_stats_json path;
      Fmt.epr "wrote stats JSON to %s@." path)
    (Sys.getenv_opt "POWERLIM_STATS_JSON")
